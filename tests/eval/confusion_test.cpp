#include "eval/confusion.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrmc::eval {
namespace {

TEST(ConfusionReport, EmptyInput) {
  const auto report = confusion_report({}, {});
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.classes, 0u);
}

TEST(ConfusionReport, PerfectClustering) {
  const std::vector<int> labels{0, 0, 1, 1, 1};
  const std::vector<int> truth{0, 0, 1, 1, 1};
  const auto report = confusion_report(labels, truth);
  ASSERT_EQ(report.rows.size(), 2u);
  // Sorted by size: cluster 1 (3 members) first.
  EXPECT_EQ(report.rows[0].cluster, 1);
  EXPECT_EQ(report.rows[0].size, 3u);
  EXPECT_DOUBLE_EQ(report.rows[0].purity, 1.0);
  EXPECT_EQ(report.rows[0].majority_class, 1);
  EXPECT_DOUBLE_EQ(report.class_recall[0], 1.0);
  EXPECT_DOUBLE_EQ(report.class_recall[1], 1.0);
}

TEST(ConfusionReport, MixedClusterCountsAndPurity) {
  // Cluster 0: 3x class0 + 1x class1.
  const std::vector<int> labels{0, 0, 0, 0};
  const std::vector<int> truth{0, 0, 0, 1};
  const auto report = confusion_report(labels, truth);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].class_counts, (std::vector<std::size_t>{3, 1}));
  EXPECT_DOUBLE_EQ(report.rows[0].purity, 0.75);
  EXPECT_EQ(report.rows[0].majority_class, 0);
  // Class 1's single member is trapped in a class-0 cluster: recall 0.
  EXPECT_DOUBLE_EQ(report.class_recall[1], 0.0);
  EXPECT_DOUBLE_EQ(report.class_recall[0], 1.0);
}

TEST(ConfusionReport, SplitClassRecallAggregatesOverClusters) {
  // Class 0 split over clusters 0 and 1, both designating class 0.
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<int> truth{0, 0, 0, 0};
  const auto report = confusion_report(labels, truth);
  EXPECT_DOUBLE_EQ(report.class_recall[0], 1.0);
}

TEST(ConfusionReport, RejectsNegativeAndMisaligned) {
  EXPECT_THROW(confusion_report(std::vector<int>{0}, std::vector<int>{}),
               common::InvalidArgument);
  EXPECT_THROW(
      confusion_report(std::vector<int>{-1}, std::vector<int>{0}),
      common::InvalidArgument);
  EXPECT_THROW(
      confusion_report(std::vector<int>{0}, std::vector<int>{-2}),
      common::InvalidArgument);
}

TEST(ConfusionReport, TextRenderingUsesClassNames) {
  const std::vector<int> labels{0, 0, 1};
  const std::vector<int> truth{0, 0, 1};
  const std::vector<std::string> names{"E.coli", "B.subtilis"};
  const auto text = confusion_report(labels, truth).to_text(names);
  EXPECT_NE(text.find("E.coli"), std::string::npos);
  EXPECT_NE(text.find("B.subtilis"), std::string::npos);
  EXPECT_NE(text.find("recall:"), std::string::npos);
}

TEST(ConfusionReport, TextFallsBackToClassIndices) {
  const std::vector<int> labels{0};
  const std::vector<int> truth{0};
  const auto text = confusion_report(labels, truth).to_text();
  EXPECT_NE(text.find("class0"), std::string::npos);
}

}  // namespace
}  // namespace mrmc::eval

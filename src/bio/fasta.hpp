// FASTA parsing and writing.  Mirrors the paper's `FastaStorage` UDF: each
// record carries a read id, the raw sequence and the full header line.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bio/parse.hpp"

namespace mrmc::bio {

struct FastaRecord {
  std::string id;      ///< first whitespace-delimited token of the header
  std::string header;  ///< full header line without the leading '>'
  std::string seq;     ///< sequence with line breaks removed

  friend bool operator==(const FastaRecord&, const FastaRecord&) = default;
};

/// Parse all records from a stream.  Throws IoError on malformed input
/// (content before the first '>', or a record with an empty sequence).
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Parse with an explicit error policy.  Under OnParseError::kSkip,
/// malformed records (empty id, no sequence, data before the first header)
/// are quarantined instead of fatal: each one adds a reason to `report`
/// (optional) and bumps the "bio.malformed_records" counter.  Under kThrow
/// this is byte-identical to the one-argument overload.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const ParseOptions& options,
                                    ParseReport* report = nullptr);

/// Parse all records from an in-memory string.
std::vector<FastaRecord> read_fasta_string(std::string_view text);
std::vector<FastaRecord> read_fasta_string(std::string_view text,
                                           const ParseOptions& options,
                                           ParseReport* report = nullptr);

/// Parse all records from a file path.  Throws IoError if unreadable (in
/// either mode — an unopenable file is never a per-record problem).  The
/// lenient overload logs the file's skip count when any record was dropped.
std::vector<FastaRecord> read_fasta_file(const std::string& path);
std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         const ParseOptions& options,
                                         ParseReport* report = nullptr);

/// Write records, wrapping sequence lines at `width` characters (0 = no wrap).
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

std::string write_fasta_string(const std::vector<FastaRecord>& records,
                               std::size_t width = 70);

}  // namespace mrmc::bio

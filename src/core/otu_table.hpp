// Cluster post-processing: representative extraction and OTU tables.
// Clustering's downstream consumers (diversity analysis, representative-only
// workflows — the paper's motivation (iii)) want, per cluster: a
// representative sequence (the medoid under sketch similarity), member
// count, and abundance fraction.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

struct OtuEntry {
  int label = 0;
  std::size_t size = 0;
  double abundance = 0.0;        ///< size / total reads
  std::size_t representative = 0;  ///< read index of the medoid
};

/// One entry per cluster, sorted by descending size (ties: lower label).
/// The representative is the member maximizing total sketch similarity to
/// its cluster mates (exact medoid for clusters up to `medoid_cap` members,
/// first member beyond that).
std::vector<OtuEntry> build_otu_table(std::span<const int> labels,
                                      std::span<const Sketch> sketches,
                                      SketchEstimator estimator =
                                          SketchEstimator::kComponentMatch,
                                      std::size_t medoid_cap = 256);

/// FASTA records of each cluster representative, named
/// "OTU<label>_size<count>" (the pre-processing output format of
/// representative-based workflows).
std::vector<bio::FastaRecord> representative_reads(
    const std::vector<OtuEntry>& table, std::span<const bio::FastaRecord> reads);

/// Render the table as TSV: label, size, abundance, representative id.
std::string otu_table_tsv(const std::vector<OtuEntry>& table,
                          std::span<const bio::FastaRecord> reads);

}  // namespace mrmc::core

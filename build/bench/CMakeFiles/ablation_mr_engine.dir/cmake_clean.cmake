file(REMOVE_RECURSE
  "CMakeFiles/ablation_mr_engine.dir/ablation_mr_engine.cpp.o"
  "CMakeFiles/ablation_mr_engine.dir/ablation_mr_engine.cpp.o.d"
  "ablation_mr_engine"
  "ablation_mr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation — the LSH-indexed greedy extension (DESIGN.md §6): comparisons
// and wall time of indexed vs exhaustive greedy clustering as the input
// grows, with agreement between the two labelings.  Demonstrates the
// near-linear scaling path the paper's conclusion gestures at.
//
//   ./ablation_lsh_index [--max-reads=3200] [--seed=42]
#include <iostream>

#include "bench_util.hpp"
#include "core/lsh_index.hpp"
#include "eval/external_indices.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t max_reads = flags.num("max-reads", 3200);
  const std::uint64_t seed = flags.num("seed", 42);

  common::TextTable table({"# Reads", "exact cmp", "indexed cmp", "speedup",
                           "exact s", "indexed s", "ARI(exact,indexed)"});

  for (std::size_t reads = 400; reads <= max_reads; reads *= 2) {
    // Rich community: many OTUs so the exhaustive scan has many clusters.
    const auto genes = simdata::generate_16s_genes(reads / 10, {}, seed);
    simdata::AmpliconParams amplicon;
    amplicon.errors = simdata::ErrorModel::uniform(0.01);
    amplicon.read_length = 80;
    const auto sample = simdata::amplicon_reads(
        genes, std::vector<double>(genes.size(), 1.0), reads, amplicon,
        seed + 1);

    const core::MinHasher hasher({.kmer = 12, .num_hashes = 40, .seed = seed});
    std::vector<core::Sketch> sketches;
    for (const auto& read : sample.reads) sketches.push_back(hasher.sketch(read.seq));

    const core::GreedyParams params{
        .theta = 0.4, .estimator = core::SketchEstimator::kComponentMatch};

    common::Stopwatch exact_watch;
    const auto exact = core::greedy_cluster(sketches, params);
    const double exact_s = exact_watch.seconds();

    common::Stopwatch indexed_watch;
    const auto indexed =
        core::greedy_cluster_indexed(sketches, params, {.bands = 20});
    const double indexed_s = indexed_watch.seconds();

    table.add_row(
        {std::to_string(reads), std::to_string(exact.comparisons),
         std::to_string(indexed.comparisons),
         common::fmt_f(static_cast<double>(exact.comparisons) /
                           static_cast<double>(std::max<std::size_t>(
                               1, indexed.comparisons)),
                       1) + "x",
         common::fmt_f(exact_s, 3), common::fmt_f(indexed_s, 3),
         common::fmt_f(eval::adjusted_rand_index(exact.labels, indexed.labels), 3)});
  }

  std::cout << "Ablation — LSH-indexed greedy vs exhaustive greedy\n";
  table.print(std::cout);
  return 0;
}

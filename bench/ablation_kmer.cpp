// Ablation — k-mer size vs clustering quality, on both data regimes:
//  * whole-metagenome (compositional signal, paper uses k=5),
//  * 16S amplicons (overlap signal, paper uses k=15).
// Shows why the paper picks small k for shotgun composition and large k for
// amplicon identity: shotgun accuracy degrades as k grows past the
// composition scale, amplicon separation needs k large enough to be
// error-discriminative.
//
//   ./ablation_kmer [--reads=300] [--seed=42]
#include <iostream>

#include "bench_util.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t reads = flags.num("reads", 300);
  const std::uint64_t seed = flags.num("seed", 42);

  common::TextTable table({"dataset", "k", "# Cluster", "W.Acc"});

  const auto shotgun = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = reads, .seed = seed});
  for (const int k : {3, 5, 7, 9, 11, 15}) {
    const core::MinHasher hasher(
        {.kmer = k, .num_hashes = 100, .canonical = true, .seed = seed});
    std::vector<core::Sketch> sketches;
    for (const auto& read : shotgun.reads) sketches.push_back(hasher.sketch(read.seq));
    const auto result = core::hierarchical_cluster(
        sketches, {.theta = 0.5, .linkage = core::Linkage::kAverage,
                   .estimator = core::SketchEstimator::kComponentMatch});
    table.add_row({"whole-metagenome S8", std::to_string(k),
                   std::to_string(result.num_clusters),
                   common::fmt_pct(eval::weighted_cluster_accuracy(
                       result.labels, shotgun.labels))});
  }

  const auto amplicon = simdata::build_16s_simulated(
      {.reads = reads, .error_rate = 0.03, .seed = seed});
  for (const int k : {5, 9, 12, 15, 21}) {
    const core::MinHasher hasher({.kmer = k, .num_hashes = 50, .seed = seed});
    std::vector<core::Sketch> sketches;
    for (const auto& read : amplicon.reads) {
      sketches.push_back(hasher.sketch(read.seq));
    }
    const auto result = core::hierarchical_cluster(
        sketches, {.theta = 0.12, .linkage = core::Linkage::kAverage,
                   .estimator = core::SketchEstimator::kComponentMatch});
    table.add_row({"16S simulated 3%", std::to_string(k),
                   std::to_string(result.num_clusters),
                   common::fmt_pct(eval::weighted_cluster_accuracy(
                       result.labels, amplicon.labels))});
  }

  std::cout << "Ablation — k-mer size (" << reads << " reads per dataset)\n";
  table.print(std::cout);
  return 0;
}

// SimDfs — an in-memory stand-in for HDFS.  Files are split into fixed-size
// blocks; each block is replicated onto `replication` distinct simulated
// nodes chosen deterministically (round-robin primary + seeded secondaries).
// MapReduce jobs use the block table both for input splits and for the
// scheduler's locality preferences, exactly the role HDFS plays for Hadoop.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mrmc::mr {

struct DfsBlock {
  std::uint64_t id = 0;
  std::size_t offset = 0;     ///< byte offset within the file
  std::size_t size = 0;
  std::vector<int> replicas;  ///< node ids holding a copy (first = primary)
};

struct DfsFileInfo {
  std::string path;
  std::size_t size = 0;
  std::vector<DfsBlock> blocks;
};

class SimDfs {
 public:
  struct Options {
    std::size_t nodes = 4;
    std::size_t block_size = 64 * 1024;  ///< scaled-down HDFS 64 MB default
    std::size_t replication = 3;
    std::uint64_t seed = 7;
  };

  SimDfs() : SimDfs(Options{}) {}
  explicit SimDfs(Options options);

  /// Create or overwrite a file.  Content is chunked into blocks and placed.
  void write(const std::string& path, std::string content);

  /// Append to an existing file (creates it if absent).
  void append(const std::string& path, std::string_view content);

  [[nodiscard]] bool exists(const std::string& path) const noexcept;

  /// Full content; throws IoError if the path is missing.
  [[nodiscard]] std::string read(const std::string& path) const;

  /// Content of one block.
  [[nodiscard]] std::string read_block(const std::string& path,
                                       std::size_t block_index) const;

  [[nodiscard]] const DfsFileInfo& stat(const std::string& path) const;

  /// All paths, sorted.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Paths with the given prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(const std::string& prefix) const;

  void remove(const std::string& path);

  /// Take a node out of service: its replicas are dropped and every
  /// affected block is deterministically re-replicated onto surviving
  /// nodes, up to min(replication, live nodes).  Blocks whose last live
  /// replica dies before a survivor exists become lost (read() throws).
  /// No-op if the node is already down.
  void decommission_node(int node);

  /// Bring a node back into service with an empty disk (its old replicas
  /// stay dropped); new placements may use it again.  No-op if alive.
  void recommission_node(int node);

  [[nodiscard]] bool node_alive(int node) const;
  [[nodiscard]] std::size_t live_nodes() const noexcept;

  /// Block ids currently replicated below the target factor (but not
  /// lost), ascending — the re-replication queue a NameNode would keep.
  [[nodiscard]] std::vector<std::uint64_t> under_replicated_blocks() const;

  /// Block ids with zero live replicas, ascending.  Reading a file that
  /// contains one throws IoError.
  [[nodiscard]] std::vector<std::uint64_t> lost_blocks() const;

  [[nodiscard]] std::size_t nodes() const noexcept { return options_.nodes; }
  [[nodiscard]] std::size_t block_size() const noexcept {
    return options_.block_size;
  }

  /// Bytes stored per node (replicas counted) — used in balance tests.
  [[nodiscard]] std::vector<std::size_t> node_usage() const;

  /// Total logical bytes across all files (one copy each).
  [[nodiscard]] std::size_t total_bytes() const noexcept;

 private:
  struct File {
    DfsFileInfo info;
    std::string content;
  };

  std::vector<int> place_block(std::uint64_t block_id) const;
  void require_readable(const File& file) const;

  Options options_;
  std::map<std::string, File> files_;
  std::uint64_t next_block_id_ = 1;
  std::size_t next_primary_ = 0;
  std::vector<char> node_alive_;         ///< per-node liveness
  std::uint64_t decommission_epoch_ = 0;  ///< salts re-replication draws
};

}  // namespace mrmc::mr

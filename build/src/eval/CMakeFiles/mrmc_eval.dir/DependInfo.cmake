
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/confusion.cpp" "src/eval/CMakeFiles/mrmc_eval.dir/confusion.cpp.o" "gcc" "src/eval/CMakeFiles/mrmc_eval.dir/confusion.cpp.o.d"
  "/root/repo/src/eval/external_indices.cpp" "src/eval/CMakeFiles/mrmc_eval.dir/external_indices.cpp.o" "gcc" "src/eval/CMakeFiles/mrmc_eval.dir/external_indices.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/mrmc_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/mrmc_eval.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

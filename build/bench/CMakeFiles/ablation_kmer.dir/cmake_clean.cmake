file(REMOVE_RECURSE
  "CMakeFiles/ablation_kmer.dir/ablation_kmer.cpp.o"
  "CMakeFiles/ablation_kmer.dir/ablation_kmer.cpp.o.d"
  "ablation_kmer"
  "ablation_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

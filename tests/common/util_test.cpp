#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace mrmc::common {
namespace {

// ------------------------------------------------------------------- timer

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  EXPECT_GE(watch.millis(), 0.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch watch;
  watch.reset();
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(ThreadCpuStopwatch, BusyWorkAccruesCpuTime) {
  ThreadCpuStopwatch watch;
  // Spin until ~20 ms of CPU time accrues (or a generous iteration cap).
  volatile double sink = 0.0;
  for (long i = 0; i < 200'000'000 && watch.seconds() < 0.02; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  EXPECT_GT(watch.seconds(), 0.0);
  EXPECT_GE(watch.millis(), watch.seconds() * 1000.0 * 0.99);
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.02);
}

#ifdef MRMC_HAS_THREAD_CPUTIME
TEST(ThreadCpuStopwatch, SleepingAccruesAlmostNoCpuTime) {
  ThreadCpuStopwatch cpu;
  Stopwatch wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GE(wall.seconds(), 0.04);  // the wall clock saw the nap...
  EXPECT_LT(cpu.seconds(), 0.04);   // ...the thread CPU clock mostly did not
}
#endif

TEST(FormatDuration, SecondsStyle) {
  EXPECT_EQ(format_duration(8.44), "8.4s");
  EXPECT_EQ(format_duration(0.0), "0.0s");
  EXPECT_EQ(format_duration(59.96), "60.0s");
}

TEST(FormatDuration, MinutesStyleMatchesPaperTables) {
  EXPECT_EQ(format_duration(265.0), "4m 25s");   // Table III S1 hierarchical
  EXPECT_EQ(format_duration(155.0), "2m 35s");   // Table III S1 greedy
  EXPECT_EQ(format_duration(60.0), "1m 00s");
  EXPECT_EQ(format_duration(3600.0), "60m 00s");
}

// ------------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"SID", "W.Acc"});
  table.add_row({"S1", "90.42"});
  table.add_row({"S12", "97.54"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| SID "), std::string::npos);
  EXPECT_NE(text.find("| S12 "), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TableFormat, FixedDecimals) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(3.14159, 0), "3");
  EXPECT_EQ(fmt_pct(0.9042), "90.42");
  EXPECT_EQ(fmt_pct(1.0, 1), "100.0");
}

// ------------------------------------------------------------------- error

TEST(Error, HierarchyAndMessages) {
  const IoError io("missing file");
  EXPECT_STREQ(io.what(), "missing file");
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("y"), Error);
}

TEST(Error, RequireMacroThrowsInvalidArgument) {
  auto f = [](int v) { MRMC_REQUIRE(v > 0, "v must be positive"); };
  EXPECT_NO_THROW(f(1));
  EXPECT_THROW(f(0), InvalidArgument);
}

TEST(Error, CheckMacroThrowsError) {
  auto f = [](bool ok) { MRMC_CHECK(ok, "invariant"); };
  EXPECT_NO_THROW(f(true));
  EXPECT_THROW(f(false), Error);
}

TEST(Error, FailHelperIncludesContext) {
  try {
    fail("parser", "bad token");
    FAIL() << "fail() must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("parser"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad token"), std::string::npos);
  }
}

}  // namespace
}  // namespace mrmc::common

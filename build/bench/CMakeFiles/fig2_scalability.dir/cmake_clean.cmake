file(REMOVE_RECURSE
  "CMakeFiles/fig2_scalability.dir/fig2_scalability.cpp.o"
  "CMakeFiles/fig2_scalability.dir/fig2_scalability.cpp.o.d"
  "fig2_scalability"
  "fig2_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

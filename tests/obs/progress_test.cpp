#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mrmc::obs::progress {
namespace {

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracker = Tracker::global();
    tracker.set_render(false);  // keep test output clean
    tracker.set_enabled(true);
  }
  void TearDown() override { Tracker::global().set_enabled(false); }
};

TEST_F(ProgressTest, CountsTasksRetriesAndBytes) {
  auto& tracker = Tracker::global();
  tracker.begin_job("unit", 4, 8, 2);
  tracker.task_done(TaskClass::kMap);
  tracker.task_done(TaskClass::kMap);
  tracker.task_done(TaskClass::kFetch);
  tracker.task_done(TaskClass::kReduce);
  tracker.task_done(TaskClass::kOther);
  tracker.retry();
  tracker.add_bytes(1024.0);
  tracker.add_bytes(512.0);

  const Tracker::Snapshot snap = tracker.snapshot();
  EXPECT_TRUE(snap.active);
  EXPECT_EQ(snap.job, "unit");
  EXPECT_EQ(snap.planned_maps, 4u);
  EXPECT_EQ(snap.done_maps, 2u);
  EXPECT_EQ(snap.planned_fetches, 8u);
  EXPECT_EQ(snap.done_fetches, 1u);
  EXPECT_EQ(snap.planned_reduces, 2u);
  EXPECT_EQ(snap.done_reduces, 1u);
  EXPECT_EQ(snap.done_other, 1u);
  EXPECT_EQ(snap.retries, 1u);
  EXPECT_DOUBLE_EQ(snap.bytes, 1536.0);
  // 4 of 14 planned tasks are done.
  EXPECT_DOUBLE_EQ(snap.fraction, 4.0 / 14.0);
  EXPECT_GE(snap.elapsed_s, 0.0);
  EXPECT_GE(snap.eta_s, 0.0);  // fraction > 0 makes the estimate available

  tracker.end_job();
  const Tracker::Snapshot after = tracker.snapshot();
  EXPECT_FALSE(after.active);
  EXPECT_EQ(after.jobs_completed, snap.jobs_completed + 1);
}

TEST_F(ProgressTest, BeginJobResetsTheTallies) {
  auto& tracker = Tracker::global();
  tracker.begin_job("first", 2, 2, 2);
  tracker.task_done(TaskClass::kMap);
  tracker.add_bytes(99.0);
  tracker.end_job();

  tracker.begin_job("second", 5, 0, 1);
  const Tracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.job, "second");
  EXPECT_EQ(snap.done_maps, 0u);
  EXPECT_DOUBLE_EQ(snap.bytes, 0.0);
  EXPECT_DOUBLE_EQ(snap.fraction, 0.0);
  EXPECT_EQ(snap.eta_s, -1.0);  // nothing done yet: no estimate
  tracker.end_job();
}

TEST_F(ProgressTest, DisabledTrackerIgnoresTheHotPath) {
  auto& tracker = Tracker::global();
  tracker.begin_job("gated", 1, 1, 1);
  tracker.set_enabled(false);
  tracker.task_done(TaskClass::kMap);
  tracker.retry();
  tracker.add_bytes(7.0);
  tracker.set_enabled(true);
  const Tracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.done_maps, 0u);
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_DOUBLE_EQ(snap.bytes, 0.0);
  tracker.end_job();
}

TEST_F(ProgressTest, JobScopeEndsTheJobWhenAnExceptionUnwinds) {
  auto& tracker = Tracker::global();
  try {
    Tracker::JobScope scope(tracker, "doomed", 3, 3, 3);
    EXPECT_TRUE(tracker.snapshot().active);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(tracker.snapshot().active);
}

TEST_F(ProgressTest, JobScopeIsANoOpWhileDisabled) {
  auto& tracker = Tracker::global();
  tracker.set_enabled(false);
  const std::size_t before = tracker.snapshot().jobs_completed;
  { Tracker::JobScope scope(tracker, "ghost", 1, 1, 1); }
  tracker.set_enabled(true);
  EXPECT_EQ(tracker.snapshot().jobs_completed, before);
}

// ------------------------------------------------------- sim progress grid

std::vector<TraceEvent> grid_events() {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Tracer::global().events()) {
    if (event.phase == 'C' && event.name == "sim progress") {
      out.push_back(event);
    }
  }
  return out;
}

class ProgressGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(ProgressGridTest, CumulativeCountsFollowTheSimClock) {
  const std::vector<SimInterval> maps = {{0.0, 2.0}, {0.0, 4.0}};
  const std::vector<SimInterval> fetches = {{2.0, 3.0}};
  const std::vector<SimInterval> reduces = {{4.0, 8.0}};
  emit_sim_progress_grid(Tracer::global(), 2, maps, fetches, reduces, 8.0, 4);

  const auto events = grid_events();
  ASSERT_EQ(events.size(), 5u);  // points + 1 instants
  // t=0: nothing done yet.
  EXPECT_EQ(events[0].arg("map_done"), "0");
  // t=2: the first map (end 2.0 <= 2) is done.
  EXPECT_EQ(events[1].arg("map_done"), "1");
  EXPECT_EQ(events[1].arg("fetch_done"), "0");
  // t=4: both maps and the fetch are done.
  EXPECT_EQ(events[2].arg("map_done"), "2");
  EXPECT_EQ(events[2].arg("fetch_done"), "1");
  EXPECT_EQ(events[2].arg("reduce_done"), "0");
  // t=8: everything.
  EXPECT_EQ(events[4].arg("reduce_done"), "1");
}

TEST_F(ProgressGridTest, GridIsDeterministic) {
  const std::vector<SimInterval> maps = {{0.0, 1.5}, {0.5, 3.25}};
  const std::vector<SimInterval> reduces = {{3.25, 7.75}};
  emit_sim_progress_grid(Tracer::global(), 3, maps, {}, reduces, 7.75);
  const auto first = grid_events();
  Tracer::global().clear();
  emit_sim_progress_grid(Tracer::global(), 3, maps, {}, reduces, 7.75);
  const auto second = grid_events();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), 65u);  // default 64 points + 1
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ts_us, second[i].ts_us);
    EXPECT_EQ(first[i].args, second[i].args);
  }
}

TEST_F(ProgressGridTest, NoOpWithoutTracerOrHorizon) {
  const std::vector<SimInterval> maps = {{0.0, 1.0}};
  Tracer::global().set_enabled(false);
  emit_sim_progress_grid(Tracer::global(), 2, maps, {}, {}, 1.0);
  Tracer::global().set_enabled(true);
  emit_sim_progress_grid(Tracer::global(), 2, maps, {}, {}, 0.0);
  EXPECT_TRUE(grid_events().empty());
}

}  // namespace
}  // namespace mrmc::obs::progress

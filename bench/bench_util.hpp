// Shared helpers for the table/figure harnesses: a tiny flag parser and the
// method runners that execute MrMC-MinH and every comparator on a sample
// with the per-dataset parameter sets used by the paper.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "baselines/cdhit_like.hpp"
#include "baselines/hclust_family.hpp"
#include "baselines/mc_lsh.hpp"
#include "baselines/metacluster_like.hpp"
#include "baselines/uclust_like.hpp"
#include "common/fsio.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::bench {

/// Minimal --key=value / --flag parser.
class Flags {
 public:
  // GCC 12 emits a -Wrestrict false positive (PR105329) for the inlined
  // std::string copies below at -O2; the code is plain substring handling.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      // (iterator construction avoids a GCC-12 -Wrestrict false positive)
      const std::string body(arg.begin() + 2, arg.end());
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        values_[body] = "1";
      } else {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    }
  }
#pragma GCC diagnostic pop

  [[nodiscard]] std::string str(const std::string& key, std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] long num(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stol(it->second);
  }
  [[nodiscard]] double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Wire the shared observability flags into the obs globals, before any
/// simulated job runs:
///   --trace=<path>    Chrome trace of every simulated job (as MRMC_TRACE)
///   --report=<path>   job-doctor report; .html/.json/text by extension
///                     (as MRMC_REPORT); bare --report prints text at exit
/// Environment variables already set keep working; flags override them.
inline void apply_obs_flags(const Flags& flags) {
  auto& tracer = obs::Tracer::global();
  const std::string trace_path = flags.str("trace", tracer.output_path());
  if (!trace_path.empty() && trace_path != "1") {
    tracer.set_output_path(trace_path);
    tracer.set_enabled(true);
  }
  auto& collector = obs::report::Collector::global();
  const std::string report_path = flags.str("report", "");
  if (flags.flag("report") || collector.enabled()) {
    collector.set_enabled(true);
    if (!report_path.empty() && report_path != "1") {
      collector.set_output_path(report_path);
    }
  }
}

/// End-of-run counterpart of apply_obs_flags(): flush the trace, honor
/// --metrics (print the snapshot) and MRMC_METRICS, and emit the job-doctor
/// report — to the --report=<path> file, or to `out` for a bare --report.
inline void finish_obs(const Flags& flags, std::ostream& out = std::cout) {
  auto& tracer = obs::Tracer::global();
  if (tracer.flush()) {
    out << "\nwrote Chrome trace to " << tracer.output_path()
        << " (open in Perfetto or chrome://tracing)\n";
  }
  if (flags.flag("metrics")) {
    out << "\nObs metrics snapshot\n"
        << obs::Registry::global().snapshot().to_text();
  }
  obs::Registry::write_global_if_configured();
  auto& collector = obs::report::Collector::global();
  if (collector.flush()) {
    out << "\nwrote job report to " << collector.output_path() << "\n";
  } else if (flags.str("report", "") == "1" && collector.size() > 0) {
    const auto reports = collector.reports();
    out << "\nJob doctor\n"
        << obs::report::to_text(std::span<const obs::report::JobReport>(reports));
  }
}

/// Machine-readable benchmark record, one row per measured point, written as
/// BENCH_<name>.json so CI can archive a perf trajectory.  Doubles render
/// %.17g (round-trip exact); `raw()` embeds pre-rendered JSON (e.g. a
/// JobReport's findings array).
///
/// Schema v1 (consumed by obs::regress and `mrmc_doctor regress`):
///   {"bench": "<name>", "schema_version": 1, "keys": ["reads", ...],
///    "rows": [{...}, ...]}
/// `keys` names the row fields that identify a measured point (the regress
/// doctor matches baseline and candidate rows on them); every other numeric
/// field is a compared metric.
class BenchRecord {
 public:
  explicit BenchRecord(std::string name, std::vector<std::string> keys = {})
      : name_(std::move(name)), keys_(std::move(keys)) {}

  class Row {
   public:
    Row& num(const std::string& key, double value) {
      return field(key, obs::trace_double(value));
    }
    Row& num(const std::string& key, long value) {
      return field(key, std::to_string(value));
    }
    Row& str(const std::string& key, const std::string& value) {
      std::string quoted = "\"";
      for (const char c : value) {
        if (c == '"' || c == '\\') quoted.push_back('\\');
        quoted.push_back(c);
      }
      quoted.push_back('"');
      return field(key, quoted);
    }
    Row& raw(const std::string& key, const std::string& json) {
      return field(key, json);
    }

   private:
    friend class BenchRecord;
    Row& field(const std::string& key, std::string rendered) {
      if (!body_.empty()) body_ += ", ";
      body_ += "\"" + key + "\": " + rendered;
      return *this;
    }
    std::string body_;
  };

  Row& row() { return rows_.emplace_back(); }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"bench\": \"" + name_ + "\", \"schema_version\": 1";
    if (!keys_.empty()) {
      out += ", \"keys\": [";
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + keys_[i] + "\"";
      }
      out += "]";
    }
    out += ", \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += i > 0 ? ",\n" : "";
      out += "  {" + rows_[i].body_ + "}";
    }
    out += "\n]}\n";
    return out;
  }

  /// Default artifact name: BENCH_<name>.json in the working directory.
  [[nodiscard]] std::string default_path() const {
    return "BENCH_" + name_ + ".json";
  }

  bool write(const std::string& path) const {
    // Temp-then-rename: the regress doctor parses these artifacts, and a
    // run killed mid-write must not leave it a truncated JSON.
    return common::write_file_atomic(path, to_json());
  }

 private:
  std::string name_;
  std::vector<std::string> keys_;
  std::vector<Row> rows_;
};

/// One table row worth of results for a method on a sample.
struct MethodResult {
  std::string method;
  std::vector<int> labels;
  std::size_t clusters_reported = 0;  ///< after the min-size filter
  double wall_s = 0.0;
  double sim_s = -1.0;  ///< simulated cluster time (MrMC variants only)
};

/// Evaluate one labeling: reported cluster count, W.Acc (if truth), W.Sim.
struct Evaluated {
  std::size_t clusters = 0;
  double wacc = -1.0;
  double wsim = 0.0;
};

/// `count_min_size` filters the reported cluster count (0 = same as
/// `min_cluster_size`); W.Acc/W.Sim always use `min_cluster_size`.
inline Evaluated evaluate(const MethodResult& result,
                          const simdata::LabeledReads& sample,
                          std::size_t min_cluster_size,
                          std::size_t wsim_pairs = 16,
                          std::size_t count_min_size = 0) {
  Evaluated out;
  out.clusters = eval::clusters_at_least(
      result.labels, count_min_size == 0 ? min_cluster_size : count_min_size);
  if (sample.has_labels()) {
    out.wacc = eval::weighted_cluster_accuracy(
        result.labels, sample.labels, {.min_cluster_size = min_cluster_size});
  }
  eval::SimilarityOptions options;
  options.min_cluster_size = std::max<std::size_t>(2, min_cluster_size);
  options.max_pairs_per_cluster = wsim_pairs;
  out.wsim = eval::weighted_similarity(result.labels, sample.reads, options);
  return out;
}

/// The paper's scaled min-size reporting rule: Tables III-V only count
/// clusters above a size floor (50 sequences at paper scale).
inline std::size_t scaled_min_cluster_size(std::size_t reads,
                                           std::size_t paper_reads) {
  if (paper_reads == 0) return 2;
  const double scaled = 50.0 * static_cast<double>(reads) /
                        static_cast<double>(paper_reads);
  return std::max<std::size_t>(2, static_cast<std::size_t>(scaled + 0.5));
}

/// Run MrMC-MinH (hierarchical or greedy) through the distributed pipeline.
inline MethodResult run_mrmc(const simdata::LabeledReads& sample,
                             core::Mode mode, int kmer, std::size_t hashes,
                             double theta, std::size_t nodes,
                             std::uint64_t seed, bool canonical = true) {
  core::PipelineParams params;
  params.minhash = {.kmer = kmer, .num_hashes = hashes, .canonical = canonical,
                    .seed = seed};
  params.mode = mode;
  params.theta = theta;
  core::ExecutionOptions exec;
  exec.cluster.nodes = nodes;

  MethodResult result;
  result.method = mode == core::Mode::kHierarchical ? "MrMC-MinH^h" : "MrMC-MinH^g";
  common::Stopwatch watch;
  auto pipeline = core::run_pipeline(sample.reads, params, exec);
  result.wall_s = watch.seconds();
  result.sim_s = pipeline.sim_total_s;
  result.labels = std::move(pipeline.labels);
  return result;
}

inline MethodResult wrap_baseline(std::string name,
                                  baselines::BaselineResult&& result) {
  MethodResult out;
  out.method = std::move(name);
  out.labels = std::move(result.labels);
  out.wall_s = result.wall_s;
  return out;
}

}  // namespace mrmc::bench

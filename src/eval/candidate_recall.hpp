// Candidate-generation quality harness: how many of the pairs that *matter*
// (exact sketch similarity >= θ) does a candidate backend actually propose?
//
//   recall    = |candidates ∩ {pairs >= θ}| / |{pairs >= θ}|
//   precision = |candidates ∩ {pairs >= θ}| / |candidates|
//
// The exact all-pairs sweep is the oracle, so this is O(n^2) scoring — run
// it on a subsample (sample_rows) of a large input, as the 1 M-read
// experiment does with its 100 K-read subsample (EXPERIMENTS.md).  The
// report is deterministic for a given sketch matrix and parameters.
#pragma once

#include <cstddef>

#include "common/thread_pool.hpp"
#include "core/candidates.hpp"
#include "core/minhash.hpp"

namespace mrmc::eval {

struct CandidateRecallReport {
  std::size_t reads = 0;            ///< rows scored (after subsampling)
  std::size_t true_pairs = 0;       ///< exact pairs with similarity >= θ
  std::size_t candidate_pairs = 0;  ///< pairs the backend proposed
  std::size_t recovered_pairs = 0;  ///< true pairs among the candidates
  double recall = 1.0;              ///< 1.0 when there are no true pairs
  double precision = 0.0;           ///< 0.0 when there are no candidates
  core::candidates::BandShape shape;  ///< resolved banding ({0,0} for exact)
};

/// Score `params`' candidate set on the first min(rows, sample_rows) sketch
/// rows against the exact >= θ oracle under `estimator`.  sample_rows == 0
/// means all rows.
[[nodiscard]] CandidateRecallReport candidate_recall(
    const core::kernels::SketchMatrix& sketches, double theta,
    const core::candidates::Params& params, core::SketchEstimator estimator,
    std::size_t sample_rows = 0, common::ThreadPool* pool = nullptr);

}  // namespace mrmc::eval

#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/fsio.hpp"
#include "common/error.hpp"

namespace mrmc::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

namespace {

/// %.17g round-trips doubles exactly through strtod.
std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

constexpr std::array<double, 31> kDefaultBounds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  1e1,
    2e1,  5e1,  1e2,  2e2,  5e2,  1e3,  2e3,  5e3,  1e4};

}  // namespace

long Counter::value() const noexcept {
  long total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(detail::kShards * (bounds_.size() + 1)) {
  MRMC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be sorted ascending");
}

std::span<const double> Histogram::default_bounds() noexcept {
  return {kDefaultBounds.data(), kDefaultBounds.size()};
}

void Histogram::observe(double value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const std::size_t shard = detail::shard_index();
  counts_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  observe_count_[shard].value.fetch_add(1, std::memory_order_relaxed);
  // CAS add: atomic<double>::fetch_add is C++20 but spotty pre-GCC-12 — a
  // per-shard CAS is uncontended and portable.
  auto& sum = sums_[shard].value;
  double seen = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(seen, seen + value,
                                    std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += counts_[shard * (bounds_.size() + 1) + b].value.load(
          std::memory_order_relaxed);
    }
    snap.count += observe_count_[shard].value.load(std::memory_order_relaxed);
    snap.sum += sums_[shard].value.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& cell : counts_) cell.value.store(0, std::memory_order_relaxed);
  for (auto& cell : observe_count_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : sums_) cell.value.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double q) const noexcept {
  if (count <= 0 || bounds.empty() || counts.size() != bounds.size() + 1) {
    return 0.0;
  }
  // One observation has no spread: every percentile IS that sample.
  // Interpolating inside its bucket would invent a value never observed.
  if (count == 1) return sum;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  long cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const long in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= bounds.size()) return bounds.back();  // overflow: clamp
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (bounds[b] - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += name + " count=" + std::to_string(hist.count) +
           " sum=" + format_double(hist.sum) +
           " mean=" + format_double(hist.mean()) +
           " p50=" + format_double(hist.percentile(0.50)) +
           " p95=" + format_double(hist.percentile(0.95)) +
           " p99=" + format_double(hist.percentile(0.99)) + "\n";
    for (std::size_t b = 0; b <= hist.bounds.size(); ++b) {
      if (hist.counts[b] == 0) continue;  // sparse: most decades stay empty
      const std::string le =
          b < hist.bounds.size() ? format_double(hist.bounds[b]) : "+inf";
      out += name + "{le=" + le + "} " + std::to_string(hist.counts[b]) + "\n";
    }
  }
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  // Label-free Prometheus text exposition (# TYPE + one sample per line).
  // Dots and other punctuation are illegal in Prometheus metric names, so
  // "mr.shuffle_bytes" exports as "mrmc_mr_shuffle_bytes".
  const auto prom_name = [](std::string_view name, const char* suffix = "") {
    std::string out = "mrmc_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(ok ? c : '_');
    }
    out += suffix;
    return out;
  };
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    // Summaries stay label-free: _count and _sum only, no quantile series.
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " summary\n";
    out += prom_name(name, "_count") + " " + std::to_string(hist.count) + "\n";
    out += prom_name(name, "_sum") + " " + format_double(hist.sum) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + format_double(value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(hist.count) +
           ", \"sum\": " + format_double(hist.sum) +
           ", \"p50\": " + format_double(hist.percentile(0.50)) +
           ", \"p95\": " + format_double(hist.percentile(0.95)) +
           ", \"p99\": " + format_double(hist.percentile(0.99)) +
           ", \"bounds\": [";
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += format_double(hist.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(hist.counts[b]);
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (bounds.empty()) bounds = Histogram::default_bounds();
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(
                           std::vector<double>(bounds.begin(), bounds.end())))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

bool Registry::write_global_if_configured() {
  const char* path = std::getenv("MRMC_METRICS");
  if (path == nullptr || *path == '\0') return false;
  const MetricsSnapshot snap = global().snapshot();
  std::string_view p(path);
  if (p.rfind("prom:", 0) == 0) {
    // MRMC_METRICS=prom:<path> selects the Prometheus text exposition.
    p.remove_prefix(5);
    if (p.empty()) return false;
    return common::write_file_atomic(std::string(p), snap.to_prometheus());
  }
  return common::write_file_atomic(
      path, p.size() >= 5 && p.substr(p.size() - 5) == ".json"
                ? snap.to_json()
                : snap.to_text());
}

}  // namespace mrmc::obs

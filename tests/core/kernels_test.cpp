// Scalar-vs-SIMD equivalence suite for core::kernels.
//
// The kernel layer's contract is *bit identity*: the AVX2 path must produce
// exactly the bytes the scalar path produces — same sketches, same match
// counts, same argmin indices — so clustering output and the simulated-clock
// cost model never depend on the host instruction set or thread count.
// These tests enforce that contract directly (kernel by kernel) and
// end-to-end (similarity matrices, dendrograms, pipeline labels).

#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bio/fasta.hpp"
#include "bio/kmer.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "core/minhash.hpp"
#include "core/pipeline.hpp"

namespace mrmc::core {
namespace {

using kernels::Backend;

bool avx2_available() { return kernels::backend_available(Backend::kAvx2); }

/// Random ACGT sequence with occasional ambiguous bases.
std::string random_seq(common::Xoshiro256& rng, std::size_t length,
                       double n_rate = 0.0) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string seq;
  seq.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (n_rate > 0.0 && rng.bounded(1000) < static_cast<std::uint64_t>(n_rate * 1000)) {
      seq.push_back('N');
    } else {
      seq.push_back(kBases[rng.bounded(4)]);
    }
  }
  return seq;
}

std::vector<std::uint64_t> random_features(common::Xoshiro256& rng,
                                           std::size_t count) {
  std::vector<std::uint64_t> features(count);
  for (auto& f : features) f = rng();  // full 64-bit range on purpose
  return features;
}

// ------------------------------------------------------------- min_sketch

TEST(MinSketchEquivalence, BitIdenticalAcrossBackendsAndShapes) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  common::Xoshiro256 rng(42);
  const std::uint64_t pow2_mod = std::uint64_t{1} << 30;   // 4^15
  const std::uint64_t odd_mod = (std::uint64_t{1} << 30) - 7;  // non-pow2
  for (const std::size_t num_hashes : {1UL, 3UL, 5UL, 8UL, 100UL, 101UL}) {
    for (const std::uint64_t modulus : {std::uint64_t{0}, pow2_mod, odd_mod}) {
      UniversalHashFamily family(num_hashes, modulus, rng());
      for (const std::size_t n_features : {1UL, 2UL, 7UL, 64UL, 257UL}) {
        const auto features = random_features(rng, n_features);
        std::vector<std::uint64_t> scalar(num_hashes);
        std::vector<std::uint64_t> simd(num_hashes);
        kernels::min_sketch(family.multipliers(), family.offsets(), modulus,
                            features, scalar, Backend::kScalar);
        kernels::min_sketch(family.multipliers(), family.offsets(), modulus,
                            features, simd, Backend::kAvx2);
        ASSERT_EQ(scalar, simd)
            << "num_hashes=" << num_hashes << " modulus=" << modulus
            << " n_features=" << n_features;
      }
    }
  }
}

TEST(MinSketchEquivalence, MatchesDirectHashFamilyEvaluation) {
  common::Xoshiro256 rng(7);
  const std::uint64_t pow2_mod = std::uint64_t{1} << 10;  // 4^5
  for (const std::uint64_t modulus : {std::uint64_t{0}, pow2_mod,
                                      std::uint64_t{999983}}) {
    UniversalHashFamily family(13, modulus, 99);
    const auto features = random_features(rng, 100);
    std::vector<std::uint64_t> out(family.size());
    kernels::min_sketch(family.multipliers(), family.offsets(), modulus,
                        features, out, Backend::kScalar);
    for (std::size_t i = 0; i < family.size(); ++i) {
      std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
      for (const std::uint64_t x : features) {
        expected = std::min(expected, family.hash(i, x));
      }
      EXPECT_EQ(out[i], expected) << "hash " << i << " modulus " << modulus;
    }
  }
}

TEST(MinSketchEquivalence, EmptyFeatureSetFillsSentinel) {
  UniversalHashFamily family(5, 0, 1);
  for (const Backend backend : {Backend::kScalar, Backend::kAvx2}) {
    if (!kernels::backend_available(backend)) continue;
    std::vector<std::uint64_t> out(5, 123);
    kernels::min_sketch(family.multipliers(), family.offsets(), 0, {}, out,
                        backend);
    for (const std::uint64_t v : out) EXPECT_EQ(v, kernels::kEmptyFeatureMin);
  }
}

TEST(MinSketchEquivalence, SketcherEquivalentAcrossKmerAndCanonical) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  common::Xoshiro256 rng(2026);
  for (const int k : {1, 5, 15, 31}) {
    for (const bool canonical : {false, true}) {
      MinHashParams params;
      params.kmer = k;
      params.canonical = canonical;
      params.num_hashes = 33;  // not a multiple of the AVX2 lane count
      params.seed = static_cast<std::uint64_t>(k) * 2 + canonical;
      const MinHasher hasher(params);
      for (int rep = 0; rep < 8; ++rep) {
        // Mix of short (< k), ambiguous-laden and normal reads.
        const std::size_t length = rep == 0 ? static_cast<std::size_t>(k) / 2
                                            : 20 + rng.bounded(180);
        const std::string seq = random_seq(rng, length, rep % 3 == 0 ? 0.1 : 0.0);
        Sketch scalar, simd;
        {
          kernels::ScopedBackendOverride force(Backend::kScalar);
          scalar = hasher.sketch(seq);
        }
        {
          kernels::ScopedBackendOverride force(Backend::kAvx2);
          simd = hasher.sketch(seq);
        }
        ASSERT_EQ(scalar, simd) << "k=" << k << " canonical=" << canonical;
      }
    }
  }
}

TEST(MinSketchEquivalence, EmptyReadSketchIsSentinel) {
  const MinHasher hasher({.kmer = 15, .num_hashes = 9});
  const std::vector<std::string> seqs = {"", "ACGT", "NNNNNNNNNNNNNNNNNNNN"};
  for (const std::string& seq : seqs) {
    const Sketch sketch = hasher.sketch(seq);
    ASSERT_EQ(sketch.size(), 9U);
    for (const std::uint64_t v : sketch) EXPECT_EQ(v, kEmptyMin);
  }
}

// ------------------------------------------------------------ count_equal

TEST(CountEqualEquivalence, AllLengthsIncludingTails) {
  common::Xoshiro256 rng(5);
  for (std::size_t len = 0; len <= 70; ++len) {
    std::vector<std::uint64_t> a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
      a[i] = rng.bounded(4);  // small alphabet -> frequent equality
      b[i] = rng.bounded(4);
    }
    std::size_t expected = 0;
    for (std::size_t i = 0; i < len; ++i) expected += a[i] == b[i] ? 1 : 0;
    EXPECT_EQ(kernels::count_equal(a, b, Backend::kScalar), expected);
    if (avx2_available()) {
      EXPECT_EQ(kernels::count_equal(a, b, Backend::kAvx2), expected)
          << "len=" << len;
    }
  }
}

TEST(CountEqualEquivalence, HighBitValues) {
  // Values with the top bit set would break a signed comparison scheme.
  const std::vector<std::uint64_t> a{~0ULL, 1ULL << 63, 5, ~0ULL, 9};
  const std::vector<std::uint64_t> b{~0ULL, 1ULL << 63, 6, 0, 9};
  EXPECT_EQ(kernels::count_equal(a, b, Backend::kScalar), 3U);
  if (avx2_available()) {
    EXPECT_EQ(kernels::count_equal(a, b, Backend::kAvx2), 3U);
  }
}

// ----------------------------------------------------------------- argmin

TEST(ArgminEquivalence, FirstMinimumWins) {
  common::Xoshiro256 rng(11);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t len = 1; len <= 40; ++len) {
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> row(len);
      for (auto& v : row) {
        // Coarse grid so duplicate minima (ties) are common, plus +inf
        // dead slots like the agglomerator produces.
        v = rng.bounded(8) == 0 ? kInf
                                : static_cast<double>(rng.bounded(6)) / 4.0;
      }
      std::size_t expected = 0;
      for (std::size_t i = 1; i < len; ++i) {
        if (row[i] < row[expected]) expected = i;
      }
      EXPECT_EQ(kernels::argmin(row, Backend::kScalar), expected);
      if (avx2_available()) {
        EXPECT_EQ(kernels::argmin(row, Backend::kAvx2), expected)
            << "len=" << len << " rep=" << rep;
      }
    }
  }
}

TEST(ArgminEquivalence, EmptyAndAllInfRows) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(kernels::argmin({}, Backend::kScalar), 0U);
  const std::vector<double> dead(13, kInf);
  EXPECT_EQ(kernels::argmin(dead, Backend::kScalar), 0U);
  if (avx2_available()) {
    EXPECT_EQ(kernels::argmin(dead, Backend::kAvx2), 0U);
  }
}

// --------------------------------------------------------- count_distinct

TEST(CountDistinct, MatchesSetSemantics) {
  common::Xoshiro256 rng(3);
  std::vector<std::uint64_t> scratch;
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<std::uint64_t> values(rng.bounded(50));
    for (auto& v : values) v = rng.bounded(10);
    const std::set<std::uint64_t> reference(values.begin(), values.end());
    EXPECT_EQ(kernels::count_distinct(values, scratch), reference.size());
  }
  EXPECT_EQ(kernels::count_distinct({}, scratch), 0U);
}

// ----------------------------------------------------------- SketchMatrix

TEST(SketchMatrix, RoundTripsThroughSketchVectors) {
  common::Xoshiro256 rng(17);
  std::vector<Sketch> sketches(9, Sketch(21));
  for (auto& sketch : sketches) {
    for (auto& v : sketch) v = rng();
  }
  const auto matrix = kernels::SketchMatrix::from_sketches(sketches);
  EXPECT_EQ(matrix.rows(), 9U);
  EXPECT_EQ(matrix.cols(), 21U);
  EXPECT_EQ(matrix.to_sketches(), sketches);
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    const auto row = matrix.row(i);
    ASSERT_TRUE(std::equal(row.begin(), row.end(), sketches[i].begin()));
  }
}

TEST(SketchMatrix, SketchMatrixMatchesSketchAll) {
  common::Xoshiro256 rng(23);
  std::vector<std::string> seqs;
  for (int i = 0; i < 12; ++i) seqs.push_back(random_seq(rng, 80));
  std::vector<std::string_view> views(seqs.begin(), seqs.end());

  const MinHasher hasher({.kmer = 5, .num_hashes = 17, .seed = 4});
  common::ThreadPool pool(4);
  const auto serial = hasher.sketch_all(views);
  const auto pooled = hasher.sketch_all(views, &pool);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(kernels::SketchMatrix::from_sketches(serial),
            hasher.sketch_matrix(views));
  EXPECT_EQ(kernels::SketchMatrix::from_sketches(serial),
            hasher.sketch_matrix(views, &pool));
}

// ------------------------------------------------------- SortedSketchStore

TEST(SortedSketchStore, MatchesSetBasedSimilarity) {
  common::Xoshiro256 rng(29);
  std::vector<Sketch> sketches(10, Sketch(20));
  for (auto& sketch : sketches) {
    for (auto& v : sketch) v = rng.bounded(12);  // lots of duplicate minima
  }
  const SortedSketchStore store{std::span<const Sketch>(sketches)};
  ASSERT_EQ(store.size(), sketches.size());
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    for (std::size_t j = 0; j < sketches.size(); ++j) {
      EXPECT_DOUBLE_EQ(store.jaccard(i, j),
                       set_based_similarity(sketches[i], sketches[j]));
    }
  }
}

// ------------------------------------------- similarity matrices, end to end

std::vector<bio::FastaRecord> make_reads(std::size_t count, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  // A few underlying templates with point mutations -> non-trivial clusters.
  std::vector<std::string> templates;
  for (int t = 0; t < 3; ++t) templates.push_back(random_seq(rng, 120));
  std::vector<bio::FastaRecord> reads(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string seq = templates[i % templates.size()];
    for (int m = 0; m < 4; ++m) {
      seq[rng.bounded(seq.size())] = "ACGT"[rng.bounded(4)];
    }
    reads[i].id = "r" + std::to_string(i);
    reads[i].seq = std::move(seq);
  }
  return reads;
}

TEST(SimilarityMatrixEquivalence, BackendsAndThreadCountsAgree) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const auto reads = make_reads(70, 31);
  std::vector<std::string_view> views;
  for (const auto& read : reads) views.emplace_back(read.seq);
  const MinHasher hasher({.kmer = 5, .num_hashes = 24, .seed = 8});
  const auto matrix = hasher.sketch_matrix(views);

  for (const SketchEstimator estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    SimilarityMatrix reference;
    {
      kernels::ScopedBackendOverride force(Backend::kScalar);
      reference = pairwise_similarity_matrix(matrix, estimator);
    }
    for (const Backend backend : {Backend::kScalar, Backend::kAvx2}) {
      kernels::ScopedBackendOverride force(backend);
      common::ThreadPool pool(4);
      for (common::ThreadPool* p : {static_cast<common::ThreadPool*>(nullptr),
                                    &pool}) {
        const SimilarityMatrix got = pairwise_similarity_matrix(matrix, estimator, p);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          for (std::size_t j = 0; j < got.size(); ++j) {
            ASSERT_EQ(got.at(i, j), reference.at(i, j))
                << "backend=" << kernels::backend_name(backend)
                << " pooled=" << (p != nullptr) << " cell " << i << "," << j;
          }
        }
      }
    }
  }
}

TEST(SimilarityMatrixEquivalence, FlatMatrixMatchesSketchSpanPath) {
  const auto reads = make_reads(40, 37);
  std::vector<std::string_view> views;
  for (const auto& read : reads) views.emplace_back(read.seq);
  const MinHasher hasher({.kmer = 5, .num_hashes = 16, .seed = 5});
  const auto sketches = hasher.sketch_all(views);
  const auto matrix = hasher.sketch_matrix(views);
  for (const SketchEstimator estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    const SimilarityMatrix via_span =
        pairwise_similarity_matrix(std::span<const Sketch>(sketches), estimator);
    const SimilarityMatrix via_matrix = pairwise_similarity_matrix(matrix, estimator);
    for (std::size_t i = 0; i < via_span.size(); ++i) {
      for (std::size_t j = 0; j < via_span.size(); ++j) {
        ASSERT_EQ(via_span.at(i, j), via_matrix.at(i, j));
      }
    }
  }
}

TEST(ClusteringEquivalence, GreedyIdenticalAcrossBackends) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const auto reads = make_reads(60, 41);
  std::vector<std::string_view> views;
  for (const auto& read : reads) views.emplace_back(read.seq);
  const MinHasher hasher({.kmer = 5, .num_hashes = 30, .seed = 3});
  const auto matrix = hasher.sketch_matrix(views);
  for (const SketchEstimator estimator :
       {SketchEstimator::kComponentMatch, SketchEstimator::kSetBased}) {
    const GreedyParams params{0.4, estimator};
    GreedyResult scalar, simd;
    {
      kernels::ScopedBackendOverride force(Backend::kScalar);
      scalar = greedy_cluster(matrix, params);
    }
    {
      kernels::ScopedBackendOverride force(Backend::kAvx2);
      simd = greedy_cluster(matrix, params);
    }
    EXPECT_EQ(scalar.labels, simd.labels);
    EXPECT_EQ(scalar.representatives, simd.representatives);
    EXPECT_EQ(scalar.comparisons, simd.comparisons);
    // The flat-matrix overload must also agree with the span overload.
    const GreedyResult via_span =
        greedy_cluster(std::span<const Sketch>(matrix.to_sketches()), params);
    EXPECT_EQ(scalar.labels, via_span.labels);
    EXPECT_EQ(scalar.comparisons, via_span.comparisons);
  }
}

TEST(ClusteringEquivalence, DendrogramBitIdenticalAcrossBackends) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const auto reads = make_reads(50, 43);
  std::vector<std::string_view> views;
  for (const auto& read : reads) views.emplace_back(read.seq);
  const MinHasher hasher({.kmer = 5, .num_hashes = 20, .seed = 6});
  const auto matrix = hasher.sketch_matrix(views);
  for (const Linkage linkage :
       {Linkage::kSingle, Linkage::kAverage, Linkage::kComplete}) {
    HierarchicalResult scalar, simd;
    {
      kernels::ScopedBackendOverride force(Backend::kScalar);
      scalar = hierarchical_cluster(matrix, {0.5, linkage});
    }
    {
      kernels::ScopedBackendOverride force(Backend::kAvx2);
      simd = hierarchical_cluster(matrix, {0.5, linkage});
    }
    EXPECT_EQ(scalar.labels, simd.labels);
    ASSERT_EQ(scalar.dendrogram.merges.size(), simd.dendrogram.merges.size());
    for (std::size_t i = 0; i < scalar.dendrogram.merges.size(); ++i) {
      const auto& a = scalar.dendrogram.merges[i];
      const auto& b = simd.dendrogram.merges[i];
      EXPECT_EQ(a.left, b.left);
      EXPECT_EQ(a.right, b.right);
      EXPECT_EQ(a.distance, b.distance);  // bit-identical doubles
      EXPECT_EQ(a.size, b.size);
    }
  }
}

TEST(ClusteringEquivalence, PipelineLabelsIdenticalAcrossBackendsAndThreads) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const auto reads = make_reads(48, 47);
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    for (const bool distributed : {false, true}) {
      PipelineParams params;
      params.mode = mode;
      params.theta = 0.5;
      params.minhash = {.kmer = 5, .num_hashes = 20, .seed = 9};
      std::vector<int> reference;
      for (const Backend backend : {Backend::kScalar, Backend::kAvx2}) {
        for (const std::size_t threads : {1UL, 4UL}) {
          kernels::ScopedBackendOverride force(backend);
          ExecutionOptions exec;
          exec.distributed = distributed;
          exec.threads = threads;
          exec.isolated_pool = true;
          const PipelineResult result = run_pipeline(reads, params, exec);
          if (reference.empty()) {
            reference = result.labels;
            ASSERT_FALSE(reference.empty());
          } else {
            ASSERT_EQ(result.labels, reference)
                << mode_name(mode) << " distributed=" << distributed
                << " backend=" << kernels::backend_name(backend)
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------- dispatch

TEST(Dispatch, BackendNamesAndAvailability) {
  EXPECT_STREQ(kernels::backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(kernels::backend_name(Backend::kAvx2), "avx2");
  EXPECT_TRUE(kernels::backend_available(Backend::kScalar));
  // active_backend() must be available and stable across calls.
  const Backend active = kernels::active_backend();
  EXPECT_TRUE(kernels::backend_available(active));
  EXPECT_EQ(kernels::active_backend(), active);
}

TEST(Dispatch, ScopedOverrideRestoresPreviousBackend) {
  const Backend before = kernels::active_backend();
  {
    kernels::ScopedBackendOverride force(Backend::kScalar);
    EXPECT_EQ(kernels::active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(kernels::active_backend(), before);
}

}  // namespace
}  // namespace mrmc::core

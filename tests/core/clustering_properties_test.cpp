// Cross-cutting clustering invariants, swept over seeds and modes:
// label validity, permutation behaviour, threshold extremes, and the
// relationship between the greedy and hierarchical partitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/prng.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "eval/external_indices.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

std::vector<Sketch> sample_sketches(std::uint64_t seed, std::size_t reads = 120) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S9"), {.reads = reads, .seed = seed});
  const MinHasher hasher(
      {.kmer = 5, .num_hashes = 64, .canonical = true, .seed = seed});
  std::vector<Sketch> sketches;
  sketches.reserve(sample.size());
  for (const auto& read : sample.reads) sketches.push_back(hasher.sketch(read.seq));
  return sketches;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, LabelsAreAlwaysDenseAndComplete) {
  const auto sketches = sample_sketches(GetParam());
  for (const double theta : {0.3, 0.5, 0.7}) {
    const auto greedy = greedy_cluster(sketches, {.theta = theta});
    const auto hier = hierarchical_cluster(sketches, {.theta = theta});
    for (const auto& result : {greedy.labels, hier.labels}) {
      ASSERT_EQ(result.size(), sketches.size());
      std::set<int> labels(result.begin(), result.end());
      EXPECT_EQ(*labels.begin(), 0);
      EXPECT_EQ(*labels.rbegin(), static_cast<int>(labels.size()) - 1);
    }
  }
}

TEST_P(SeedSweep, ThresholdExtremesBehave) {
  const auto sketches = sample_sketches(GetParam());
  EXPECT_EQ(greedy_cluster(sketches, {.theta = 0.0}).num_clusters, 1u);
  EXPECT_EQ(hierarchical_cluster(sketches, {.theta = 0.0}).num_clusters, 1u);
  // theta = 1: only sketch-identical reads merge; duplicates are unlikely
  // in 120 distinct reads, so (almost) every read is alone.
  EXPECT_GT(greedy_cluster(sketches, {.theta = 1.0}).num_clusters,
            sketches.size() - 5);
}

TEST_P(SeedSweep, HierarchicalIsInvariantToInputPermutation) {
  auto sketches = sample_sketches(GetParam(), 60);
  const auto baseline = hierarchical_cluster(sketches, {.theta = 0.5});

  // Permute, cluster, and compare partitions via ARI (labels renumber).
  std::vector<std::size_t> perm(sketches.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  common::Xoshiro256 rng(GetParam() ^ 0xabcULL);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.bounded(i)]);
  }
  std::vector<Sketch> permuted(sketches.size());
  for (std::size_t i = 0; i < perm.size(); ++i) permuted[i] = sketches[perm[i]];
  const auto shuffled = hierarchical_cluster(permuted, {.theta = 0.5});

  // Map the shuffled labels back to original positions.
  std::vector<int> unshuffled(sketches.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    unshuffled[perm[i]] = shuffled.labels[i];
  }
  // Tie-breaking in the NN-chain depends on index order, so borderline
  // reads can migrate between clusters under permutation; the partitions
  // must still agree strongly.
  EXPECT_GT(eval::adjusted_rand_index(baseline.labels, unshuffled), 0.75);
}

TEST_P(SeedSweep, GreedyPartitionIsCoarserOrComparableAtSameTheta) {
  // Component-match greedy joins anything theta-similar to a representative,
  // while the average-linkage cut demands cluster-level cohesion — greedy
  // clusters at the same theta are fewer or equal in count.
  const auto sketches = sample_sketches(GetParam());
  const double theta = 0.45;
  const auto greedy = greedy_cluster(
      sketches, {.theta = theta, .estimator = SketchEstimator::kComponentMatch});
  const auto hier = hierarchical_cluster(
      sketches, {.theta = theta + 0.05,
                 .estimator = SketchEstimator::kComponentMatch});
  EXPECT_LE(greedy.num_clusters, hier.num_clusters + sketches.size() / 10);
}

TEST_P(SeedSweep, DendrogramHeightsWithinDistanceRange) {
  const auto sketches = sample_sketches(GetParam(), 50);
  const auto matrix = pairwise_similarity_matrix(
      sketches, SketchEstimator::kComponentMatch, nullptr);
  for (const auto linkage :
       {Linkage::kSingle, Linkage::kAverage, Linkage::kComplete}) {
    const auto dendrogram = agglomerate(matrix, linkage);
    for (const auto& merge : dendrogram.merges) {
      EXPECT_GE(merge.distance, -1e-9);
      EXPECT_LE(merge.distance, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace mrmc::core

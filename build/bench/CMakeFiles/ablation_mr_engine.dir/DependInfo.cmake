
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_mr_engine.cpp" "bench/CMakeFiles/ablation_mr_engine.dir/ablation_mr_engine.cpp.o" "gcc" "bench/CMakeFiles/ablation_mr_engine.dir/ablation_mr_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pig/CMakeFiles/mrmc_pig.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mrmc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrmc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/mrmc_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/mrmc_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

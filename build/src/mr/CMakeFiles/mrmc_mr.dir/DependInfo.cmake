
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/cluster.cpp" "src/mr/CMakeFiles/mrmc_mr.dir/cluster.cpp.o" "gcc" "src/mr/CMakeFiles/mrmc_mr.dir/cluster.cpp.o.d"
  "/root/repo/src/mr/input_format.cpp" "src/mr/CMakeFiles/mrmc_mr.dir/input_format.cpp.o" "gcc" "src/mr/CMakeFiles/mrmc_mr.dir/input_format.cpp.o.d"
  "/root/repo/src/mr/simdfs.cpp" "src/mr/CMakeFiles/mrmc_mr.dir/simdfs.cpp.o" "gcc" "src/mr/CMakeFiles/mrmc_mr.dir/simdfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mrmc_eval.
# This may be replaced when dependencies are built.

#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

simdata::LabeledReads small_sample() {
  return simdata::build_whole_metagenome(simdata::whole_metagenome_spec("S8"),
                                         {.reads = 80, .seed = 1});
}

PipelineParams base_params(Mode mode) {
  PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 64, .canonical = true, .seed = 1};
  params.mode = mode;
  params.theta = mode == Mode::kGreedy ? 0.34 : 0.5;
  return params;
}

TEST(Pipeline, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kGreedy), "greedy");
  EXPECT_STREQ(mode_name(Mode::kHierarchical), "hierarchical");
}

TEST(Pipeline, EmptyInput) {
  const PipelineResult result = run_pipeline({}, base_params(Mode::kGreedy));
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(Pipeline, DistributedGreedyMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.distributed = true;
  distributed.cluster.nodes = 4;
  ExecutionOptions local;
  local.distributed = false;

  const auto params = base_params(Mode::kGreedy);
  const auto a = run_pipeline(sample.reads, params, distributed);
  const auto b = run_pipeline(sample.reads, params, local);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(Pipeline, DistributedHierarchicalMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.distributed = true;
  distributed.cluster.nodes = 3;
  ExecutionOptions local;
  local.distributed = false;

  const auto params = base_params(Mode::kHierarchical);
  const auto a = run_pipeline(sample.reads, params, distributed);
  const auto b = run_pipeline(sample.reads, params, local);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Pipeline, LabelsCoverEveryRead) {
  const auto sample = small_sample();
  const auto result = run_pipeline(sample.reads, base_params(Mode::kHierarchical));
  ASSERT_EQ(result.labels.size(), sample.size());
  for (const int label : result.labels) EXPECT_GE(label, 0);
  EXPECT_GE(result.num_clusters, 1u);
}

TEST(Pipeline, DistributedJobsReportStats) {
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.distributed = true;
  exec.cluster.nodes = 4;
  exec.records_per_split = 16;

  const auto result =
      run_pipeline(sample.reads, base_params(Mode::kHierarchical), exec);
  EXPECT_EQ(result.sketch_stats.input_records, sample.size());
  EXPECT_EQ(result.sketch_stats.map_tasks, 5u);  // 80 reads / 16 per split
  EXPECT_EQ(result.similarity_stats.input_records, sample.size());
  EXPECT_EQ(result.cluster_stats.reduce_tasks, 1u);  // GROUP ALL
  EXPECT_GT(result.sim_total_s, 0.0);
  EXPECT_GT(result.sketch_stats.counters.at("reads.sketched"), 0);
}

TEST(Pipeline, GreedySkipsSimilarityJob) {
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.distributed = true;
  const auto result = run_pipeline(sample.reads, base_params(Mode::kGreedy), exec);
  EXPECT_EQ(result.similarity_stats.input_records, 0u);
  EXPECT_EQ(result.cluster_stats.reduce_tasks, 1u);
}

TEST(Pipeline, GreedyIsSimFasterThanHierarchical) {
  // The paper's consistent observation (Table III): greedy ~2x faster.
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 200, .seed = 2});
  ExecutionOptions exec;
  exec.distributed = true;
  const auto greedy = run_pipeline(sample.reads, base_params(Mode::kGreedy), exec);
  const auto hier =
      run_pipeline(sample.reads, base_params(Mode::kHierarchical), exec);
  EXPECT_LT(greedy.sim_total_s, hier.sim_total_s);
}

TEST(Pipeline, MoreNodesLowerSimulatedTime) {
  const auto sample = small_sample();
  ExecutionOptions few, many;
  few.cluster.nodes = 2;
  many.cluster.nodes = 12;
  const auto params = base_params(Mode::kHierarchical);
  const auto slow = run_pipeline(sample.reads, params, few);
  const auto fast = run_pipeline(sample.reads, params, many);
  EXPECT_GT(slow.sim_total_s, fast.sim_total_s);
  EXPECT_EQ(slow.labels, fast.labels);  // node count never changes results
}

TEST(PipelineCost, ModelsArePositiveAndMonotone) {
  EXPECT_GT(cost::sketch_work(100, 50), 0.0);
  EXPECT_GT(cost::sketch_work(200, 50), cost::sketch_work(100, 50));
  EXPECT_GT(cost::compare_work(100), cost::compare_work(50));
  EXPECT_GT(cost::dendrogram_work(1000), cost::dendrogram_work(100));
  EXPECT_GT(cost::sketch_bytes(100), cost::sketch_bytes(10));
}

}  // namespace
}  // namespace mrmc::core

// Live job progress (obs v3): maps/fetches/reduces done vs planned, retry
// counts and byte throughput, fed from the executor's task-completion path.
//
// The Tracker is a process-wide singleton of relaxed atomics — the hot path
// (one fetch_add per completed task) is lock-free and cheap enough to stay
// on even when nobody is watching.  Consumers read a coherent Snapshot; the
// opt-in MRMC_PROGRESS stderr status line ("\r"-refreshed, ETA-estimating)
// is throttled and rendered under a try_lock so it never blocks a worker.
//
// Everything here touches only real wall time and stderr; the simulated
// layer stays untouched, so seeded runs remain byte-deterministic with
// progress enabled.  For simulated jobs, emit_sim_progress_grid() writes a
// deterministic sim-clock "sim progress" counter series into the trace —
// derived purely from the scheduler's task intervals, identical across
// runs and thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>

#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace mrmc::obs::progress {

/// Task classes the engine reports.  obs cannot see mr, so the executor
/// maps its own TaskKind onto this enum at the callback boundary.
enum class TaskClass { kOther = 0, kMap = 1, kFetch = 2, kReduce = 3 };

inline constexpr std::size_t kTaskClasses = 4;

class Tracker {
 public:
  /// The process-wide tracker; first use reads MRMC_PROGRESS (any non-empty
  /// value enables it and turns on the stderr status line).
  static Tracker& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Stderr rendering on/off (snapshot() keeps working either way; tests
  /// disable rendering to keep their output clean).
  void set_render(bool render) noexcept {
    render_.store(render, std::memory_order_relaxed);
  }
  void set_min_render_interval_ms(double ms);

  /// Start tracking a job: record its name and planned task counts, zero
  /// the done/retry/byte tallies.
  void begin_job(std::string name, std::size_t planned_maps,
                 std::size_t planned_fetches, std::size_t planned_reduces);
  /// One task of `cls` completed successfully.  Lock-free.
  void task_done(TaskClass cls) noexcept;
  /// One task attempt failed and was resubmitted (retry or lost-input
  /// rerun).  Lock-free.
  void retry() noexcept;
  /// Bytes moved by a shuffle fetch.  Lock-free.
  void add_bytes(double bytes) noexcept;
  /// Finish the job: render the final status line (with newline) and mark
  /// the tracker idle.
  void end_job();

  struct Snapshot {
    std::string job;
    bool active = false;
    std::size_t planned_maps = 0, done_maps = 0;
    std::size_t planned_fetches = 0, done_fetches = 0;
    std::size_t planned_reduces = 0, done_reduces = 0;
    std::size_t done_other = 0;
    std::size_t retries = 0;
    double bytes = 0.0;
    double fraction = 0.0;   ///< done / planned over all classes, in [0, 1]
    double elapsed_s = 0.0;  ///< wall seconds since begin_job
    double eta_s = -1.0;     ///< remaining-time estimate; -1 = unknown
    std::size_t jobs_completed = 0;  ///< end_job() calls so far
  };
  /// Coherent-enough view for dashboards/health endpoints: atomics are read
  /// individually (relaxed), the job name and clock under the mutex.
  [[nodiscard]] Snapshot snapshot() const;

  /// RAII job bracket: begin_job at construction, end_job at destruction —
  /// including when an exception unwinds mid-job.  No-op while disabled.
  class JobScope {
   public:
    JobScope(Tracker& tracker, std::string name, std::size_t planned_maps,
             std::size_t planned_fetches, std::size_t planned_reduces)
        : tracker_(&tracker), active_(tracker.enabled()) {
      if (active_) {
        tracker_->begin_job(std::move(name), planned_maps, planned_fetches,
                            planned_reduces);
      }
    }
    ~JobScope() {
      if (active_) tracker_->end_job();
    }
    JobScope(const JobScope&) = delete;
    JobScope& operator=(const JobScope&) = delete;

   private:
    Tracker* tracker_;
    bool active_;
  };

 private:
  Tracker();

  void maybe_render(bool final_line);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> render_{true};
  std::atomic<long> planned_[kTaskClasses]{};
  std::atomic<long> done_[kTaskClasses]{};
  std::atomic<long> retries_{0};
  std::atomic<double> bytes_{0.0};

  mutable std::mutex mutex_;  // job name, clock, render throttle
  std::string job_;
  bool active_ = false;
  std::size_t jobs_completed_ = 0;
  double min_render_interval_ms_ = 100.0;
  std::chrono::steady_clock::time_point job_start_{};
  std::chrono::steady_clock::time_point last_render_{};
};

/// Deterministic sim-clock progress curve for one simulated job: a 'C'
/// counter series ("sim progress") of cumulative completed map/fetch/reduce
/// counts sampled on an even grid over [0, horizon_s].  Pure function of
/// the scheduler's task intervals — byte-identical across runs and thread
/// counts, and invisible to the doctor's trace reconstruction.
void emit_sim_progress_grid(Tracer& tracer, std::uint32_t pid,
                            std::span<const SimInterval> map_tasks,
                            std::span<const SimInterval> fetches,
                            std::span<const SimInterval> reduce_tasks,
                            double horizon_s, std::size_t points = 64);

}  // namespace mrmc::obs::progress

// 16S rRNA marker-gene model.  Real 16S genes interleave conserved regions
// (shared across taxa, used for PCR primers) with hypervariable regions
// (V1..V9) that carry the taxonomic signal.  We reproduce that structure:
// a reference scaffold whose alternating blocks mutate at very different
// rates per taxon, plus an amplicon read simulator that targets a window
// (the paper's environmental reads average 60 bp from a V-region).
#pragma once

#include <cstdint>
#include <vector>

#include "simdata/genome.hpp"
#include "simdata/reads.hpp"

namespace mrmc::simdata {

struct Marker16sParams {
  std::size_t gene_length = 1500;      ///< full-length 16S ~1.5 kb
  std::size_t block_length = 75;       ///< alternating conserved/variable blocks
  double conserved_divergence = 0.02;  ///< per-taxon divergence in conserved blocks
  double variable_divergence = 0.25;   ///< per-taxon divergence in variable blocks
  double gc = 0.55;                    ///< 16S genes are GC-rich
};

/// Generate `count` distinct 16S-like genes derived from one reference
/// scaffold.  Gene i's conserved blocks stay near the scaffold while its
/// variable blocks diverge independently — so any two genes are ~2x the
/// per-taxon divergence apart in variable regions but nearly identical in
/// conserved regions, as in real 16S data.
std::vector<Genome> generate_16s_genes(std::size_t count, const Marker16sParams& params,
                                       std::uint64_t seed);

struct AmpliconParams {
  /// First base of the targeted region.  Default anchors inside a
  /// hypervariable block (odd blocks are variable under the default
  /// Marker16sParams), which is where V-region primers point.
  std::size_t window_start = 520;
  std::size_t window_span = 110;    ///< amplified span within the gene
  std::size_t read_length = 60;     ///< mean read length (paper env. avg 60 bp)
  double length_jitter = 0.25;      ///< uniform +/- fraction of length noise
  /// 454 pyrosequencing reads start at the PCR primer: when true, each read
  /// begins within `start_jitter` bases of window_start, so reads of one
  /// OTU overlap nearly fully (the regime the paper's θ thresholds assume).
  bool primer_anchored = true;
  std::size_t start_jitter = 6;
  ErrorModel errors{};
  /// When true, each read's error rate is drawn uniformly from
  /// [0, errors.total()] (the Huse benchmark's "reads with up to X% error");
  /// when false every read uses `errors` as-is.
  bool uniform_error_rate = false;
};

/// Sample amplicon reads from the genes with the given per-gene relative
/// abundances (need not be normalized).  Labels = gene index.
LabeledReads amplicon_reads(const std::vector<Genome>& genes,
                            const std::vector<double>& abundances, std::size_t total,
                            const AmpliconParams& params, std::uint64_t seed);

/// Log-normal community abundances for `count` latent OTUs (rare-biosphere
/// shape of Sogin et al.): a few dominant organisms plus a long tail.
std::vector<double> lognormal_abundances(std::size_t count, double sigma,
                                         std::uint64_t seed);

}  // namespace mrmc::simdata

#include "baselines/word_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bio/kmer.hpp"
#include "common/error.hpp"

namespace mrmc::baselines {

std::vector<std::uint16_t> word_counts(std::string_view seq, int k) {
  MRMC_REQUIRE(k >= 1 && k <= 8, "dense word counts need k in [1, 8]");
  std::vector<std::uint16_t> counts(bio::kmer_space_size(k), 0);
  for (const std::uint64_t kmer : bio::extract_kmers(seq, {.k = k})) {
    if (counts[kmer] < UINT16_MAX) ++counts[kmer];
  }
  return counts;
}

std::size_t common_words(std::span<const std::uint16_t> a,
                         std::span<const std::uint16_t> b) noexcept {
  std::size_t total = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t w = 0; w < n; ++w) {
    total += std::min(a[w], b[w]);
  }
  return total;
}

double kmer_distance(std::span<const std::uint16_t> a, std::size_t len_a,
                     std::span<const std::uint16_t> b, std::size_t len_b,
                     int k) noexcept {
  const std::size_t min_len = std::min(len_a, len_b);
  if (min_len < static_cast<std::size_t>(k)) return 1.0;
  const std::size_t max_common = min_len - static_cast<std::size_t>(k) + 1;
  const std::size_t common = common_words(a, b);
  return 1.0 - static_cast<double>(std::min(common, max_common)) /
                   static_cast<double>(max_common);
}

std::vector<double> word_frequencies(std::string_view seq, int k) {
  const auto counts = word_counts(seq, k);
  const double total = std::accumulate(counts.begin(), counts.end(), 0.0);
  std::vector<double> freqs(counts.size(), 0.0);
  if (total > 0) {
    for (std::size_t w = 0; w < counts.size(); ++w) {
      freqs[w] = static_cast<double>(counts[w]) / total;
    }
  }
  return freqs;
}

namespace {

/// Midrank assignment: equal values share the average of their positions.
std::vector<double> midranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && values[order[j]] == values[order[i]]) ++j;
    const double rank = 0.5 * static_cast<double>(i + j - 1) + 1.0;
    for (std::size_t p = i; p < j; ++p) ranks[order[p]] = rank;
    i = j;
  }
  return ranks;
}

}  // namespace

double spearman_distance(std::span<const double> a, std::span<const double> b) {
  MRMC_REQUIRE(a.size() == b.size() && !a.empty(),
               "frequency vectors must be equal-length and non-empty");
  const auto ranks_a = midranks(a);
  const auto ranks_b = midranks(b);
  const auto n = static_cast<double>(a.size());

  // Pearson correlation of the ranks (handles ties correctly).
  const double mean = (n + 1.0) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = ranks_a[i] - mean;
    const double db = ranks_b[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;  // constant ranks: identical
  const double rho = cov / std::sqrt(var_a * var_b);
  return (1.0 - rho) / 2.0;
}

std::size_t required_common_words(std::size_t len_a, std::size_t len_b, int k,
                                  double identity) noexcept {
  const std::size_t min_len = std::min(len_a, len_b);
  if (min_len < static_cast<std::size_t>(k)) return 1;
  const auto words = static_cast<double>(min_len - static_cast<std::size_t>(k) + 1);
  const double mismatches = (1.0 - identity) * static_cast<double>(min_len);
  const double lower_bound = words - static_cast<double>(k) * mismatches;
  return lower_bound <= 1.0 ? 1 : static_cast<std::size_t>(lower_bound);
}

}  // namespace mrmc::baselines

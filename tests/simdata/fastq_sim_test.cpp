#include "simdata/fastq_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrmc::simdata {
namespace {

std::vector<bio::FastaRecord> templates() {
  return {{"a", "a", std::string(200, 'A')}, {"b", "b", std::string(200, 'C')}};
}

TEST(AttachQualities, CleanReadsScoreHigh) {
  const auto fastq = attach_qualities(templates(), {{}, {}}, {}, 1);
  ASSERT_EQ(fastq.size(), 2u);
  for (const auto& record : fastq) {
    ASSERT_EQ(record.quality.size(), record.seq.size());
    for (const char q : record.quality) {
      EXPECT_GE(bio::phred_score(q), 30);
    }
  }
}

TEST(AttachQualities, ErrorPositionsScoreLow) {
  const std::vector<std::vector<std::size_t>> positions{{5, 10, 15}, {}};
  QualityModel model;
  model.miscalibrated = 0.0;
  model.jitter = 2;
  const auto fastq = attach_qualities(templates(), positions, model, 2);
  for (const std::size_t pos : positions[0]) {
    EXPECT_LE(bio::phred_score(fastq[0].quality[pos]), model.error_quality + 2);
  }
  EXPECT_GE(bio::phred_score(fastq[1].quality[5]), 30);
}

TEST(AttachQualities, RejectsMismatchedInputs) {
  EXPECT_THROW(attach_qualities(templates(), {{}}, {}, 1),
               common::InvalidArgument);
  QualityModel bad;
  bad.clean_quality = 5;
  bad.error_quality = 10;
  EXPECT_THROW(attach_qualities(templates(), {{}, {}}, bad, 1),
               common::InvalidArgument);
}

TEST(SimulateFastq, ErrorFreeKeepsTemplates) {
  const auto result = simulate_fastq(templates(), {}, {}, 3);
  ASSERT_EQ(result.reads.size(), 2u);
  EXPECT_EQ(result.reads[0].seq, templates()[0].seq);
  EXPECT_TRUE(result.error_positions[0].empty());
}

TEST(SimulateFastq, RecordsErrorPositions) {
  const auto result =
      simulate_fastq(templates(), {.subst_rate = 0.1}, {}, 4);
  // ~20 substitutions per 200-base read.
  EXPECT_GT(result.error_positions[0].size(), 5u);
  EXPECT_LT(result.error_positions[0].size(), 50u);
  // Every recorded position differs from the template ('A').
  for (const std::size_t pos : result.error_positions[0]) {
    EXPECT_NE(result.reads[0].seq[pos], 'A');
  }
}

TEST(SimulateFastq, QualityFilterRemovesErrorBases) {
  // End-to-end QC: simulate noisy FASTQ, filter, verify survivors are the
  // cleaner reads.  High error rate so some reads trim short and drop.
  QualityModel model;
  model.miscalibrated = 0.0;
  const auto result = simulate_fastq(templates(), {.subst_rate = 0.08}, model, 5);

  std::size_t dropped = 0;
  const auto kept = bio::quality_filter(
      result.reads,
      {.trim_quality = 20, .min_length = 100, .max_mean_error = 0.01}, &dropped);
  EXPECT_EQ(kept.size() + dropped, result.reads.size());
  for (const auto& record : kept) {
    // Survivors were 3'-trimmed at their first low-quality base: the kept
    // prefix contains clean calls only.
    EXPECT_LE(bio::mean_error_probability(record), 0.01);
  }
}

TEST(SimulateFastq, DeterministicPerSeed) {
  const auto a = simulate_fastq(templates(), {.subst_rate = 0.05}, {}, 6);
  const auto b = simulate_fastq(templates(), {.subst_rate = 0.05}, {}, 6);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.error_positions, b.error_positions);
}

}  // namespace
}  // namespace mrmc::simdata

# Empty compiler generated dependencies file for ablation_mr_engine.
# This may be replaced when dependencies are built.

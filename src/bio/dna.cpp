#include "bio/dna.hpp"

#include <algorithm>

namespace mrmc::bio {

bool is_valid_dna(std::string_view seq) noexcept {
  return std::all_of(seq.begin(), seq.end(),
                     [](char c) { return encode_base(c) >= 0; });
}

std::string reverse_complement(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    out.push_back(complement_base(*it));
  }
  return out;
}

double gc_content(std::string_view seq) noexcept {
  std::size_t gc = 0;
  std::size_t acgt = 0;
  for (const char c : seq) {
    const int code = encode_base(c);
    if (code < 0) continue;
    ++acgt;
    if (code == 1 || code == 2) ++gc;
  }
  return acgt == 0 ? 0.0 : static_cast<double>(gc) / static_cast<double>(acgt);
}

std::string sanitize(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (const char c : seq) {
    const int code = encode_base(c);
    out.push_back(code < 0 ? 'N' : decode_base(code));
  }
  return out;
}

}  // namespace mrmc::bio

// Input formats over SimDfs — the HDFS-style split logic Hadoop's
// InputFormat implements.  A file's blocks become map splits, but records
// straddle block boundaries, so each reader consumes from its block's first
// record boundary through the first boundary of the next block:
//
//  * TextInputFormat — newline-delimited records,
//  * FastaInputFormat — '>'-delimited multi-line records (the paper's
//    FastaStorage loader).
//
// Every record is assigned to exactly one split, and each split carries the
// primary-replica node for locality-aware scheduling.
#pragma once

#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "mr/simdfs.hpp"

namespace mrmc::mr {

template <typename Record>
struct InputSplits {
  std::vector<std::vector<Record>> splits;  ///< one per DFS block
  std::vector<int> preferred_nodes;         ///< primary replica per split
};

/// Newline-delimited records.  A line belongs to the block where it starts.
InputSplits<std::string> text_input_splits(const SimDfs& dfs,
                                           const std::string& path);

/// FASTA records; a record belongs to the block holding its '>' header.
InputSplits<bio::FastaRecord> fasta_input_splits(const SimDfs& dfs,
                                                 const std::string& path);

}  // namespace mrmc::mr

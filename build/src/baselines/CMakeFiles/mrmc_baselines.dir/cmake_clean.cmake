file(REMOVE_RECURSE
  "CMakeFiles/mrmc_baselines.dir/cdhit_like.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/cdhit_like.cpp.o.d"
  "CMakeFiles/mrmc_baselines.dir/hclust_family.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/hclust_family.cpp.o.d"
  "CMakeFiles/mrmc_baselines.dir/mc_lsh.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/mc_lsh.cpp.o.d"
  "CMakeFiles/mrmc_baselines.dir/metacluster_like.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/metacluster_like.cpp.o.d"
  "CMakeFiles/mrmc_baselines.dir/uclust_like.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/uclust_like.cpp.o.d"
  "CMakeFiles/mrmc_baselines.dir/word_stats.cpp.o"
  "CMakeFiles/mrmc_baselines.dir/word_stats.cpp.o.d"
  "libmrmc_baselines.a"
  "libmrmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation — sketch size n vs estimator quality and clustering accuracy.
// Sweeps the number of hash functions over {10, 25, 50, 100, 200}:
//  * RMSE of the sketch Jaccard estimate against exact k-mer-set Jaccard
//    (both estimators),
//  * end-to-end W.Acc of hierarchical clustering on an S8-style sample,
//  * sketching throughput.
// Motivates the paper's n=100 (shotgun) / n=50 (16S) choices: accuracy
// saturates around there while cost keeps growing linearly.
//
//   ./ablation_sketch [--reads=300] [--pairs=2000] [--seed=42]
//                     [--bench-json[=path]]   write BENCH_ablation_sketch.json
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "bio/kmer.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t reads = flags.num("reads", 300);
  const std::size_t pairs = flags.num("pairs", 2000);
  const std::uint64_t seed = flags.num("seed", 42);

  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = reads, .seed = seed});

  // Exact k-mer sets for the RMSE reference.
  std::vector<std::vector<std::uint64_t>> feature_sets;
  feature_sets.reserve(sample.size());
  for (const auto& read : sample.reads) {
    feature_sets.push_back(bio::kmer_set(read.seq, {.k = 5, .canonical = true}));
  }

  common::TextTable table({"n hashes", "RMSE comp", "RMSE set", "W.Acc",
                           "sketch us/read"});
  bench::BenchRecord record("ablation_sketch", {"hashes"});
  for (const std::size_t hashes : {10u, 25u, 50u, 100u, 200u}) {
    const core::MinHasher hasher(
        {.kmer = 5, .num_hashes = hashes, .canonical = true, .seed = seed});

    common::Stopwatch sketch_watch;
    std::vector<core::Sketch> sketches;
    sketches.reserve(sample.size());
    for (const auto& read : sample.reads) sketches.push_back(hasher.sketch(read.seq));
    const double us_per_read = sketch_watch.seconds() * 1e6 /
                               static_cast<double>(sample.size());

    // RMSE over a fixed deterministic pair sample.
    common::Xoshiro256 rng(seed ^ hashes);
    double sq_comp = 0, sq_set = 0;
    for (std::size_t p = 0; p < pairs; ++p) {
      const std::size_t i = rng.bounded(sample.size());
      const std::size_t j = rng.bounded(sample.size());
      const double exact = bio::exact_jaccard(feature_sets[i], feature_sets[j]);
      const double comp = core::component_match_similarity(sketches[i], sketches[j]);
      const double set = core::set_based_similarity(sketches[i], sketches[j]);
      sq_comp += (comp - exact) * (comp - exact);
      sq_set += (set - exact) * (set - exact);
    }

    const auto hier = core::hierarchical_cluster(
        sketches, {.theta = 0.5, .linkage = core::Linkage::kAverage,
                   .estimator = core::SketchEstimator::kComponentMatch});
    const double wacc =
        eval::weighted_cluster_accuracy(hier.labels, sample.labels);

    table.add_row({std::to_string(hashes),
                   common::fmt_f(std::sqrt(sq_comp / pairs), 4),
                   common::fmt_f(std::sqrt(sq_set / pairs), 4),
                   common::fmt_pct(wacc), common::fmt_f(us_per_read, 1)});
    record.row()
        .num("hashes", static_cast<long>(hashes))
        .num("rmse_component", std::sqrt(sq_comp / pairs))
        .num("rmse_set_based", std::sqrt(sq_set / pairs))
        .num("wacc", wacc)
        .num("sketch_us_per_read", us_per_read)
        .str("backend", core::kernels::backend_name(core::kernels::active_backend()));
  }

  std::cout << "Ablation — sketch size vs estimator error and accuracy (S8, "
            << reads << " reads)\n";
  table.print(std::cout);
  if (flags.flag("bench-json")) {
    const std::string json = flags.str("bench-json", "");
    const std::string path =
        json.empty() || json == "1" ? record.default_path() : json;
    if (!record.write(path)) {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

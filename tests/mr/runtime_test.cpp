// Tests for the task-graph runtime (mr/runtime.hpp) and the Job façade's
// determinism guarantees on top of it: identical output, counters, and
// simulated timeline at any thread count and under any split ordering, plus
// the real-re-execution retry model.
#include "mr/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "mr/bytes.hpp"
#include "mr/job.hpp"
#include "obs/metrics.hpp"

namespace mrmc::mr {
namespace {

// --------------------------------------------------------------- TaskGraph

TEST(TaskGraph, DependentsRunAfterAllDependencies) {
  common::ThreadPool pool(4);
  runtime::TaskGraph graph;
  std::mutex mutex;
  std::vector<int> order;
  const auto record = [&](int id) {
    std::lock_guard lock(mutex);
    order.push_back(id);
  };
  // Diamond: 0 -> {1, 2} -> 3.
  const auto a = graph.add_task([&](std::size_t) { record(0); }, {});
  const auto b = graph.add_task([&](std::size_t) { record(1); }, {a});
  const auto c = graph.add_task([&](std::size_t) { record(2); }, {a});
  const auto d = graph.add_task([&](std::size_t) { record(3); }, {b, c});
  graph.run(pool);

  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_EQ(graph.attempts(d), 1u);
  EXPECT_EQ(graph.total_retries(), 0u);
}

TEST(TaskGraph, TaskFailureIsRetriedUpToTheCap) {
  common::ThreadPool pool(2);
  runtime::TaskGraph graph;
  std::atomic<int> runs{0};
  const auto id = graph.add_task(
      [&](std::size_t attempt) {
        ++runs;
        if (attempt < 2) throw runtime::TaskFailure("flaky");
      },
      {}, {.label = "", .max_attempts = 3});
  graph.run(pool);
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(graph.attempts(id), 3u);
  EXPECT_EQ(graph.total_retries(), 2u);
}

TEST(TaskGraph, ExhaustedAttemptsAbortAndSkipDependents) {
  common::ThreadPool pool(2);
  runtime::TaskGraph graph;
  std::atomic<bool> dependent_ran{false};
  const auto bad = graph.add_task(
      [](std::size_t) -> void { throw runtime::TaskFailure("always"); }, {},
      {.label = "", .max_attempts = 2});
  graph.add_task([&](std::size_t) { dependent_ran = true; }, {bad});
  EXPECT_THROW(graph.run(pool), runtime::TaskFailure);
  EXPECT_EQ(graph.attempts(bad), 2u);
  EXPECT_FALSE(dependent_ran.load());
}

TEST(TaskGraph, NonRetryableExceptionAbortsImmediately) {
  common::ThreadPool pool(2);
  runtime::TaskGraph graph;
  const auto id = graph.add_task(
      [](std::size_t) -> void { throw std::runtime_error("bug"); }, {},
      {.label = "", .max_attempts = 5});
  EXPECT_THROW(graph.run(pool), std::runtime_error);
  EXPECT_EQ(graph.attempts(id), 1u);  // programming errors are not retried
}

TEST(TaskGraph, QueueDepthGaugeDrainsToZero) {
  common::ThreadPool pool(3);
  runtime::TaskGraph graph;
  for (int i = 0; i < 20; ++i) {
    graph.add_task([](std::size_t) {}, {});
  }
  graph.run(pool);
  EXPECT_EQ(
      obs::Registry::global().gauge("runtime.task_queue_depth").value(), 0.0);
}

// ---------------------------------------------------------- lost inputs

TEST(TaskGraph, LostInputReExecutesTheCompletedUpstream) {
  common::ThreadPool pool(2);
  runtime::TaskGraph graph;
  std::atomic<int> producer_runs{0};
  const auto producer =
      graph.add_task([&](std::size_t) { ++producer_runs; }, {});
  std::atomic<int> consumer_runs{0};
  const auto consumer = graph.add_task(
      [&](std::size_t attempt) {
        ++consumer_runs;
        // First try: the producer's output "died with its node".
        if (attempt == 0) {
          throw runtime::LostInputFailure("output lost", producer);
        }
      },
      {producer});
  graph.run(pool);

  EXPECT_EQ(producer_runs.load(), 2);  // original + re-execution
  EXPECT_EQ(consumer_runs.load(), 2);  // parked, resumed after the re-run
  EXPECT_EQ(graph.attempts(producer), 2u);
  EXPECT_EQ(graph.lost_input_reruns(producer), 1u);
  EXPECT_EQ(graph.lost_input_reruns(consumer), 0u);
  EXPECT_EQ(graph.attempts(consumer), 2u);
  // Lost-input re-runs are not failures: nothing counts as a retry.
  EXPECT_EQ(graph.total_retries(), 0u);
}

TEST(TaskGraph, RepeatedLossesRerunTheUpstreamEachTime) {
  common::ThreadPool pool(3);
  runtime::TaskGraph graph;
  const auto producer = graph.add_task([](std::size_t) {}, {});
  const auto consumer = graph.add_task(
      [&](std::size_t attempt) {
        if (attempt < 3) {
          throw runtime::LostInputFailure("still lost", producer);
        }
      },
      {producer}, {.label = "", .max_attempts = 1});
  graph.run(pool);
  EXPECT_EQ(graph.lost_input_reruns(producer), 3u);
  EXPECT_EQ(graph.attempts(producer), 4u);
  EXPECT_EQ(graph.attempts(consumer), 4u);  // under max_attempts = 1: no retry
  EXPECT_EQ(graph.total_retries(), 0u);
}

TEST(TaskGraph, DownstreamDependentsAreReleasedOnlyOnce) {
  common::ThreadPool pool(4);
  runtime::TaskGraph graph;
  const auto producer = graph.add_task([](std::size_t) {}, {});
  // One sibling re-runs the producer; the other two dependents must still
  // run exactly once despite the producer finishing twice.
  const auto flaky = graph.add_task(
      [&](std::size_t attempt) {
        if (attempt == 0) {
          throw runtime::LostInputFailure("lost", producer);
        }
      },
      {producer});
  std::atomic<int> sibling_runs{0};
  const auto sibling =
      graph.add_task([&](std::size_t) { ++sibling_runs; }, {producer});
  std::atomic<int> join_runs{0};
  const auto join = graph.add_task([&](std::size_t) { ++join_runs; },
                                   {producer, flaky, sibling});
  graph.run(pool);
  EXPECT_EQ(sibling_runs.load(), 1);
  EXPECT_EQ(join_runs.load(), 1);
  EXPECT_EQ(graph.attempts(sibling), 1u);
  EXPECT_EQ(graph.attempts(join), 1u);
}

TEST(TaskGraph, LostInputNamingANonDependencyAborts) {
  common::ThreadPool pool(2);
  runtime::TaskGraph graph;
  const auto id = graph.add_task(
      [](std::size_t) -> void {
        // A task cannot claim to have lost its *own* (or a later) output;
        // that is a programming error, not a recoverable fault.
        throw runtime::LostInputFailure("bogus", 0);
      },
      {});
  EXPECT_THROW(graph.run(pool), common::Error);
  EXPECT_EQ(graph.attempts(id), 1u);
}

TEST(PoolLease, SharedByDefaultIsolatedOnRequest) {
  EXPECT_EQ(&runtime::shared_pool(), &runtime::shared_pool());
  runtime::PoolLease shared(0, false);
  EXPECT_EQ(&shared.pool(), &runtime::shared_pool());
  EXPECT_FALSE(shared.owns_pool());

  runtime::PoolLease sized(2, false);
  EXPECT_TRUE(sized.owns_pool());
  EXPECT_EQ(sized.pool().size(), 2u);
  EXPECT_NE(&sized.pool(), &runtime::shared_pool());

  runtime::PoolLease isolated(0, true);
  EXPECT_TRUE(isolated.owns_pool());
  EXPECT_NE(&isolated.pool(), &runtime::shared_pool());
}

// ------------------------------------------------------------- stable hash

// Independent re-statement of the specified algorithm (FNV-1a over
// length-prefixed bytes, finished with mix64).  If either copy drifts, the
// partitioner's cross-platform stability guarantee broke.
std::uint64_t reference_fnv(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto feed = [&hash](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash = (hash ^ bytes[i]) * 1099511628211ULL;
    }
  };
  const std::uint64_t size = text.size();
  feed(&size, sizeof(size));
  feed(text.data(), text.size());
  return common::mix64(hash);
}

TEST(StableHash, MatchesTheSpecifiedAlgorithm) {
  for (const std::string key : {"", "fox", "the quick brown fox", "\x01\x02"}) {
    EXPECT_EQ(stable_hash(key), reference_fnv(key)) << key;
  }
}

TEST(StableHash, LengthPrefixDisambiguatesComposites) {
  using P = std::pair<std::string, std::string>;
  EXPECT_NE(stable_hash(P{"ab", "c"}), stable_hash(P{"a", "bc"}));
  EXPECT_NE(stable_hash(std::vector<std::string>{"a", "b"}),
            stable_hash(std::vector<std::string>{"ab"}));
  EXPECT_NE(stable_hash(std::int64_t{1}), stable_hash(std::int64_t{2}));
  EXPECT_EQ(stable_hash(std::string("fox")), stable_hash(std::string("fox")));
}

// ----------------------------------------------- determinism across shapes

using CountJob = Job<long, long, long, std::pair<long, long>>;

CountJob::Mapper histogram_mapper() {
  return [](const long& record, Emitter<long, long>& emit) {
    emit.emit(record, 1);
    emit.count("records.mapped");
  };
}

CountJob::Reducer sum_reducer() {
  return [](const long& key, std::vector<long>& values,
            std::vector<std::pair<long, long>>& out) {
    long total = 0;
    for (const long v : values) total += v;
    out.emplace_back(key, total);
  };
}

/// Splits with strictly distinct sizes so every simulated task duration is
/// unique — the LPT schedule (and thus the fetch timeline) has no ties to
/// break arbitrarily under reordering.
std::vector<std::vector<long>> make_splits(std::size_t count,
                                           std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<std::vector<long>> splits(count);
  for (std::size_t s = 0; s < count; ++s) {
    splits[s].resize(5 + 3 * s);  // distinct sizes
    for (auto& value : splits[s]) value = static_cast<long>(rng.bounded(23));
  }
  return splits;
}

struct RunSnapshot {
  std::vector<std::pair<long, long>> output;
  Counters counters;
  std::size_t reduce_groups = 0;
  double shuffle_bytes = 0.0;
  double map_makespan = 0.0;
  double reduce_makespan = 0.0;
  double shuffle_s = 0.0;
  double total_s = 0.0;
  std::vector<std::pair<double, double>> task_spans;  // sorted (start, end)
};

RunSnapshot snapshot(const JobResult<std::pair<long, long>>& result) {
  RunSnapshot snap;
  snap.output = result.output;
  snap.counters = result.stats.counters;
  snap.reduce_groups = result.stats.reduce_groups;
  snap.shuffle_bytes = result.stats.shuffle_bytes;
  const JobTimeline& timeline = result.stats.timeline;
  snap.map_makespan = timeline.map_phase.makespan_s;
  snap.reduce_makespan = timeline.reduce_phase.makespan_s;
  snap.shuffle_s = timeline.shuffle_s;
  snap.total_s = timeline.total_s;
  for (const TaskPlacement& task : timeline.map_phase.tasks) {
    snap.task_spans.emplace_back(task.start_s, task.end_s);
  }
  for (const TaskPlacement& task : timeline.reduce_phase.tasks) {
    snap.task_spans.emplace_back(task.start_s, task.end_s);
  }
  std::sort(snap.task_spans.begin(), snap.task_spans.end());
  return snap;
}

void expect_identical(const RunSnapshot& a, const RunSnapshot& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.output, b.output);  // identical ordering, not just same set
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.reduce_groups, b.reduce_groups);
  EXPECT_EQ(a.shuffle_bytes, b.shuffle_bytes);  // bit-exact doubles
  EXPECT_EQ(a.map_makespan, b.map_makespan);
  EXPECT_EQ(a.reduce_makespan, b.reduce_makespan);
  EXPECT_EQ(a.shuffle_s, b.shuffle_s);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.task_spans, b.task_spans);
}

JobConfig determinism_config(std::size_t threads) {
  JobConfig config;
  config.name = "determinism";
  config.num_reducers = 4;
  config.cluster.nodes = 4;
  config.threads = threads;
  return config;
}

TEST(JobDeterminism, OutputCountersAndTimelineAgreeAcrossThreadCounts) {
  const auto splits = make_splits(9, 29);
  const std::vector<int> nodes(splits.size(), -1);

  RunSnapshot base;
  bool have_base = false;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0} /* shared hw pool */}) {
    CountJob job(determinism_config(threads), histogram_mapper(),
                 sum_reducer());
    const RunSnapshot snap = snapshot(job.run_splits(splits, nodes));
    if (!have_base) {
      base = snap;
      have_base = true;
      EXPECT_FALSE(base.output.empty());
      continue;
    }
    expect_identical(base, snap, "threads=" + std::to_string(threads));
  }
}

TEST(JobDeterminism, ShuffledSplitOrderIsByteIdentical) {
  const auto splits = make_splits(8, 31);
  const std::vector<int> nodes(splits.size(), -1);

  CountJob job(determinism_config(2), histogram_mapper(), sum_reducer());
  const RunSnapshot base = snapshot(job.run_splits(splits, nodes));

  // A fixed derangement of the split order.
  std::vector<std::size_t> perm(splits.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::rotate(perm.begin(), perm.begin() + 3, perm.end());
  std::vector<std::vector<long>> shuffled;
  shuffled.reserve(splits.size());
  for (const std::size_t p : perm) shuffled.push_back(splits[p]);

  CountJob job2(determinism_config(2), histogram_mapper(), sum_reducer());
  const RunSnapshot snap = snapshot(job2.run_splits(shuffled, nodes));
  expect_identical(base, snap, "rotated split order");
}

// ------------------------------------------------------------- retry model

TEST(JobRetries, ReduceFailureIsReExecutedAndCounted) {
  const auto splits = make_splits(4, 37);
  const std::vector<int> nodes(splits.size(), -1);

  auto config = determinism_config(2);
  config.name = "reduce-retry";
  config.reduce_failure_rate = 1.0;  // every reduce task fails...
  config.max_task_attempts = 3;      // ...twice, succeeding on the last try

  CountJob job(config, histogram_mapper(), sum_reducer());
  const auto result = job.run_splits(splits, nodes);

  EXPECT_EQ(result.stats.reduce_retries, 2u * config.num_reducers);
  EXPECT_EQ(result.stats.map_retries, 0u);
  EXPECT_EQ(result.stats.max_task_attempts, 3u);

  // Re-execution must not corrupt the answer.
  auto clean_config = determinism_config(2);
  clean_config.name = "reduce-clean";
  CountJob clean(clean_config, histogram_mapper(), sum_reducer());
  const auto baseline = clean.run_splits(splits, nodes);
  EXPECT_EQ(result.output, baseline.output);
  EXPECT_EQ(result.stats.counters, baseline.stats.counters);
  // The failed attempts are re-paid in simulated time.
  EXPECT_GT(result.stats.timeline.total_s, baseline.stats.timeline.total_s);
}

TEST(JobRetries, MapAndReduceFailuresCompose) {
  const auto splits = make_splits(5, 41);
  const std::vector<int> nodes(splits.size(), -1);

  auto config = determinism_config(2);
  config.name = "both-retry";
  config.map_failure_rate = 1.0;
  config.reduce_failure_rate = 1.0;
  config.max_task_attempts = 2;

  CountJob job(config, histogram_mapper(), sum_reducer());
  const auto result = job.run_splits(splits, nodes);
  EXPECT_EQ(result.stats.map_retries, splits.size());
  EXPECT_EQ(result.stats.reduce_retries, config.num_reducers);

  auto clean_config = determinism_config(2);
  clean_config.name = "both-clean";
  CountJob clean(clean_config, histogram_mapper(), sum_reducer());
  EXPECT_EQ(result.output, clean.run_splits(splits, nodes).output);
}

TEST(JobRetries, UserExceptionIsNotRetried) {
  auto config = determinism_config(2);
  config.name = "user-error";
  CountJob job(config, histogram_mapper(),
               [](const long&, std::vector<long>&,
                  std::vector<std::pair<long, long>>&) {
                 throw std::runtime_error("reducer bug");
               });
  EXPECT_THROW(job.run({1, 2, 3}), std::runtime_error);
}

// ------------------------------------------- overlapped shuffle simulation

TEST(OverlappedShuffle, HidesTransferTimeUnderTheMapPhase) {
  const auto splits = make_splits(10, 43);
  const std::vector<int> nodes(splits.size(), -1);

  auto overlapped_config = determinism_config(2);
  overlapped_config.name = "overlapped";
  overlapped_config.overlapped_shuffle = true;
  auto barrier_config = determinism_config(2);
  barrier_config.name = "barrier";
  barrier_config.overlapped_shuffle = false;

  CountJob overlapped_job(overlapped_config, histogram_mapper(), sum_reducer());
  CountJob barrier_job(barrier_config, histogram_mapper(), sum_reducer());
  const auto overlapped = overlapped_job.run_splits(splits, nodes);
  const auto barrier = barrier_job.run_splits(splits, nodes);

  // Real output and shuffle volume are independent of the shuffle model.
  EXPECT_EQ(overlapped.output, barrier.output);
  EXPECT_EQ(overlapped.stats.shuffle_bytes, barrier.stats.shuffle_bytes);

  // The overlapped model records per-fetch events; the barrier model keeps
  // the aggregate transfer.
  EXPECT_FALSE(overlapped.stats.timeline.fetches.empty());
  EXPECT_TRUE(barrier.stats.timeline.fetches.empty());
  EXPECT_GT(barrier.stats.timeline.shuffle_s, 0.0);

  // Small per-map runs drain while later map tasks still compute, so only a
  // tail (here: none) outlives the map phase.
  EXPECT_LE(overlapped.stats.timeline.shuffle_s,
            barrier.stats.timeline.shuffle_s);
  EXPECT_LE(overlapped.stats.timeline.total_s, barrier.stats.timeline.total_s);

  // Every fetch starts at or after its producing map task's end.
  const auto& timeline = overlapped.stats.timeline;
  for (const FetchPlacement& fetch : timeline.fetches) {
    ASSERT_LT(fetch.map_task, timeline.map_phase.tasks.size());
    EXPECT_GE(fetch.start_s, timeline.map_phase.tasks[fetch.map_task].end_s);
    EXPECT_GE(fetch.end_s, fetch.start_s);
  }
}

TEST(OverlappedShuffle, MergeWidthHistogramObservesEveryReducer) {
  const long before = obs::Registry::global()
                          .histogram("runtime.reduce_merge_width")
                          .snapshot()
                          .count;
  auto config = determinism_config(2);
  config.name = "merge-width";
  CountJob job(config, histogram_mapper(), sum_reducer());
  job.run(make_splits(3, 47)[2]);  // any input
  const long after = obs::Registry::global()
                         .histogram("runtime.reduce_merge_width")
                         .snapshot()
                         .count;
  EXPECT_EQ(after - before, static_cast<long>(config.num_reducers));
}

}  // namespace
}  // namespace mrmc::mr

#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mrmc::common {
namespace {

TEST(SplitMix64, AdvancesStateDeterministically) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);  // streams stay in lockstep
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(Mix64, IsAPureFunction) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, SeedsProduceDistinctStreams) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneReturnsZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(13);
  double sum = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceFrequencyTracksProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Xoshiro256, ForkedStreamsAreIndependentAndDeterministic) {
  Xoshiro256 parent1(23), parent2(23);
  Xoshiro256 fork1 = parent1.fork(5);
  Xoshiro256 fork2 = parent2.fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1(), fork2());

  Xoshiro256 parent3(23);
  Xoshiro256 other = parent3.fork(6);
  Xoshiro256 base = parent3.fork(5);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (other() == base()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  std::vector<int> values{5, 4, 3, 2, 1};
  std::shuffle(values.begin(), values.end(), rng);  // compiles & runs
  EXPECT_EQ(values.size(), 5u);
}

}  // namespace
}  // namespace mrmc::common

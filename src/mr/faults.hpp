// mr::faults — deterministic node-failure injection for the simulated
// cluster, the Hadoop contract our engine was missing: nodes crash (and
// optionally recover) mid-job, running attempts die with them, *completed*
// map outputs on a dead node are invalidated and their maps re-executed,
// the DFS re-replicates lost blocks, and repeat offenders are blacklisted.
//
// A FaultPlan is a seeded schedule of {node, crash_s, recover_s} events on
// the simulated job clock (0 = job submission).  The same plan drives every
// layer:
//   * SimDfs        — apply_to_dfs() decommissions crashed nodes, which
//                     drop their replicas and re-replicate deterministically;
//   * SimScheduler  — simulate_job(..., plan) kills attempts, invalidates
//                     map outputs, and shrinks/grows slot capacity with
//                     crash/recovery (cluster.cpp);
//   * TaskGraph     — runtime::LostInputFailure re-executes completed maps
//                     for real, so job *output* stays byte-identical while
//                     the timeline re-pays the lost work;
//   * obs           — fault instants on the trace, mr.node_crashes /
//                     mr.lost_map_outputs / mr.blacklisted_nodes metrics,
//                     and the doctor's "Faults" section.
//
// The control plane is simulated Hadoop-style: a crash is only *detected*
// at the first heartbeat-check boundary at least heartbeat_timeout_s after
// it, so killed attempts occupy their slot until detection and re-queued
// work cannot restart earlier.  A node whose crash count exceeds
// max_node_failures is blacklisted: it never rejoins even if the plan says
// it recovers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mrmc::mr {
class SimDfs;
}  // namespace mrmc::mr

namespace mrmc::mr::faults {

/// Sentinel recovery time: the node stays down for the rest of the job.
inline constexpr double kNever = std::numeric_limits<double>::infinity();

struct FaultEvent {
  int node = 0;
  double crash_s = 0.0;       ///< job-clock instant the node dies
  double recover_s = kNever;  ///< job-clock instant it rejoins (empty)
};

struct FaultConfig {
  double heartbeat_interval_s = 3.0;  ///< control-plane check cadence
  double heartbeat_timeout_s = 30.0;  ///< silence before a node is declared dead
  /// A node crashing more than this many times is blacklisted for the job.
  std::size_t max_node_failures = 2;
};

/// An immutable, validated schedule of node failures for one job.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Events are sorted by (crash_s, node); overlapping down intervals on
  /// one node are rejected by validate().
  explicit FaultPlan(std::vector<FaultEvent> events, FaultConfig config = {});

  /// Seeded random plan: `crashes` crash events spread over
  /// (0.05, 0.95) x horizon_s, each recovering after a short outage with
  /// probability `recover_fraction`.  Node 0 is never crashed so every
  /// random plan trivially satisfies validate()'s liveness requirement.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed, std::size_t nodes,
                                        std::size_t crashes, double horizon_s,
                                        double recover_fraction = 0.5,
                                        FaultConfig config = {});

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// When the control plane notices a crash: the first heartbeat-check
  /// boundary at least heartbeat_timeout_s after the crash instant.
  [[nodiscard]] double detection_s(double crash_s) const noexcept;

  [[nodiscard]] std::size_t crash_count(int node) const noexcept;

  /// True when the node's crash count exceeds max_node_failures.
  [[nodiscard]] bool blacklists(int node) const noexcept;

  /// Throws common::InvalidArgument unless every event names a node in
  /// [0, nodes), recovers after it crashes, down intervals on one node do
  /// not overlap, and at least one node stays schedulable for the whole
  /// job (never crashes, or always recovers without being blacklisted) —
  /// the condition under which any job eventually completes.
  void validate(std::size_t nodes) const;

  /// validate()'s liveness condition alone, as a predicate: true when some
  /// node stays schedulable for the whole job.  The recovery stage driver
  /// uses this to *park* (checkpoint + resume later) instead of throwing
  /// when the cluster has degraded below one schedulable node.
  [[nodiscard]] bool leaves_schedulable(std::size_t nodes) const noexcept;

  /// A copy of this plan with the heartbeat-detection interval replaced —
  /// the JobConfig::heartbeat_interval_s override.  Revalidates the
  /// resulting config (throws common::InvalidArgument on a negative value).
  [[nodiscard]] FaultPlan with_heartbeat_interval(double interval_s) const;

 private:
  std::vector<FaultEvent> events_;  ///< sorted by (crash_s, node)
  FaultConfig config_{};
};

/// One crash as the job experienced it.  recover_s is -1 when the node
/// never rejoined (permanent crash or blacklist) so every field serializes
/// as a finite %.17g double for the trace/report round trip.
struct NodeDownEvent {
  int node = 0;
  double crash_s = 0.0;
  double detect_s = 0.0;
  double recover_s = -1.0;
  bool blacklisted = false;
};

/// One task attempt the fault schedule destroyed: "killed" while running,
/// or a completed map whose output died with its node before every reducer
/// had fetched it ("lost-output").  Times are absolute job-clock seconds;
/// end_s is the detection instant at which the scheduler re-queued the work.
struct LostAttempt {
  std::string phase;  ///< "map" | "reduce"
  std::string kind;   ///< "killed" | "lost-output"
  std::size_t task = 0;
  int node = 0;
  int slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// What the fault schedule did to one simulated job (JobTimeline::faults).
struct FaultOutcome {
  std::vector<NodeDownEvent> events;       ///< plan order (by crash time)
  std::vector<LostAttempt> lost_attempts;  ///< discovery order
  std::size_t killed_attempts = 0;
  std::size_t lost_map_outputs = 0;
  std::size_t blacklisted_nodes = 0;

  [[nodiscard]] bool empty() const noexcept {
    return events.empty() && lost_attempts.empty();
  }
};

/// The scheduler's view of a plan: per-node availability windows with
/// heartbeat-delayed detection and blacklisting folded in.
class NodeTracker {
 public:
  NodeTracker(const FaultPlan& plan, std::size_t nodes);

  /// An up-interval [start, crash): the node may run work from `start`
  /// until `crash` (kNever when it stays up for good).
  struct Window {
    double start = kNever;
    double crash = kNever;
  };

  /// Earliest window in which `node` can start work at or after `t`;
  /// {kNever, kNever} when the node is down for the rest of the job.
  [[nodiscard]] Window next_window(int node, double t) const noexcept;

  /// First crash instant on `node` in [from_s, to_s); kNever if none.
  [[nodiscard]] double crash_in(int node, double from_s,
                                double to_s) const noexcept;

  [[nodiscard]] double detection_s(double crash_s) const noexcept {
    return plan_->detection_s(crash_s);
  }

  /// Every crash, in plan order, annotated with detection/blacklist.
  [[nodiscard]] const std::vector<NodeDownEvent>& down_events() const noexcept {
    return down_events_;
  }
  [[nodiscard]] std::size_t blacklisted_nodes() const noexcept {
    return blacklisted_;
  }

 private:
  const FaultPlan* plan_;
  std::vector<std::vector<Window>> windows_;   ///< per node, time-ascending
  std::vector<std::vector<double>> crashes_;   ///< per node, sorted
  std::vector<NodeDownEvent> down_events_;
  std::size_t blacklisted_ = 0;
};

/// Replay the plan onto a SimDfs up to `now_s`: crashes decommission the
/// node (dropping its replicas and re-replicating deterministically onto
/// survivors), recoveries rejoin it empty.  Events are applied in time
/// order; blacklisting is a scheduler concept and does not keep a
/// recovered node's (empty) disk out of the DFS.
void apply_to_dfs(const FaultPlan& plan, SimDfs& dfs, double now_s);

}  // namespace mrmc::mr::faults

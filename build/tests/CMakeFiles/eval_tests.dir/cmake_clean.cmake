file(REMOVE_RECURSE
  "CMakeFiles/eval_tests.dir/eval/confusion_test.cpp.o"
  "CMakeFiles/eval_tests.dir/eval/confusion_test.cpp.o.d"
  "CMakeFiles/eval_tests.dir/eval/external_indices_test.cpp.o"
  "CMakeFiles/eval_tests.dir/eval/external_indices_test.cpp.o.d"
  "CMakeFiles/eval_tests.dir/eval/metrics_test.cpp.o"
  "CMakeFiles/eval_tests.dir/eval/metrics_test.cpp.o.d"
  "eval_tests"
  "eval_tests.pdb"
  "eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

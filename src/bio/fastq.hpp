// FASTQ parsing and quality handling.  454/Illumina pipelines feed
// clustering tools FASTQ; this module parses records, converts Phred
// scores, and provides the standard pre-clustering quality controls
// (quality trimming, length/quality filters) so the library can ingest
// raw sequencer output rather than pre-cleaned FASTA.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bio/fasta.hpp"

namespace mrmc::bio {

struct FastqRecord {
  std::string id;       ///< first token of the '@' header
  std::string header;   ///< full header without '@'
  std::string seq;
  std::string quality;  ///< Phred+33 encoded, same length as seq

  friend bool operator==(const FastqRecord&, const FastqRecord&) = default;
};

/// Phred score of one quality character (offset 33); clamped at 0.
int phred_score(char quality_char) noexcept;

/// Expected per-base error probability for a Phred score: 10^(-q/10).
double phred_error_probability(int score) noexcept;

/// Mean per-base error probability of a record (1.0 for empty).
double mean_error_probability(const FastqRecord& record);

/// Parse all records from a stream.  Throws IoError on structural problems
/// (missing '+', quality/sequence length mismatch, truncated record).
std::vector<FastqRecord> read_fastq(std::istream& in);
std::vector<FastqRecord> read_fastq_string(std::string_view text);
std::vector<FastqRecord> read_fastq_file(const std::string& path);

/// Parse with an explicit error policy (see bio/parse.hpp).  Under kSkip a
/// malformed record — bad '@' header, missing '+', length mismatch, empty
/// id, or a record truncated by EOF — is quarantined: a reason lands in
/// `report` (optional), "bio.malformed_records" is bumped, and parsing
/// continues with the next record.  Under kThrow these are byte-identical
/// to the plain overloads.
std::vector<FastqRecord> read_fastq(std::istream& in,
                                    const ParseOptions& options,
                                    ParseReport* report = nullptr);
std::vector<FastqRecord> read_fastq_string(std::string_view text,
                                           const ParseOptions& options,
                                           ParseReport* report = nullptr);
std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const ParseOptions& options,
                                         ParseReport* report = nullptr);

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);
std::string write_fastq_string(const std::vector<FastqRecord>& records);

/// Drop the FASTQ quality track (for the FASTA-only clustering API).
std::vector<FastaRecord> to_fasta(const std::vector<FastqRecord>& records);

struct QualityFilter {
  int trim_quality = 10;           ///< 3'-trim below this Phred score
  std::size_t min_length = 30;     ///< discard reads shorter than this after trim
  double max_mean_error = 0.02;    ///< discard reads above this mean error
};

/// 3'-trim each read at the first position where the windowed quality drops
/// below `trim_quality`, then apply the length and mean-error filters.
/// Returns surviving reads; `dropped` (optional) counts discards.
std::vector<FastqRecord> quality_filter(const std::vector<FastqRecord>& records,
                                        const QualityFilter& filter,
                                        std::size_t* dropped = nullptr);

}  // namespace mrmc::bio

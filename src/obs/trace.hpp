// Dual-clock span/event tracer with Chrome trace-event JSON export.
//
// The engine lives in two time domains at once: tasks *execute* for real on
// this process's thread pool (wall clock) while their *placement and cost*
// are simulated on the model cluster (sim clock).  The tracer records both,
// on separate tracks of one Chrome trace-event file, viewable in Perfetto or
// chrome://tracing:
//
//   * pid 1 ("wall clock (real)") — RAII Spans and instants measured with
//     this process's steady clock: pipeline stages, map/shuffle/reduce
//     phases, Pig statements.
//   * pid 2.. (one per simulated job, "sim: <job name>") — duration events
//     on the simulated clock: every TaskPlacement becomes an event on its
//     node/slot track, plus a shuffle track, exactly reconstructing the
//     JobTimeline the SimScheduler computed.
//
// Every sim event carries args `start_s`/`end_s` printed with %.17g, so the
// exported JSON round-trips the scheduler's doubles exactly (asserted by
// tests).  Enable with MRMC_TRACE=<out.json> (written on flush / process
// exit) or programmatically via set_enabled() for in-memory inspection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrmc::obs {

/// pid of the real-wall-clock track group.
inline constexpr std::uint32_t kRealPid = 1;

using TraceArg = std::pair<std::string, std::string>;

struct TraceEvent {
  std::string name;
  std::string category;  ///< "real", "sim", "counter", or "meta"
  char phase = 'X';      ///< Chrome ph: X=complete, i=instant, M=metadata,
                         ///< C=counter (args are serialized as raw numbers),
                         ///< s/f=flow start/finish (carry flow_id as "id")
  double ts_us = 0.0;    ///< microseconds on the event's own clock
  double dur_us = 0.0;
  std::uint32_t pid = kRealPid;
  std::uint32_t tid = 0;
  /// Chrome flow-event binding id; serialized as "id" for 's'/'f' phases so
  /// viewers draw an arrow from the flow start to its finish.
  std::uint64_t flow_id = 0;
  std::vector<TraceArg> args;

  /// Value of the first arg named `key`, or "" when absent.
  [[nodiscard]] std::string_view arg(std::string_view key) const noexcept;
};

class Tracer {
 public:
  /// The process-wide tracer; first use reads MRMC_TRACE (a file path —
  /// enables tracing and sets the flush destination).
  static Tracer& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  void set_output_path(std::string path);
  [[nodiscard]] std::string output_path() const;

  /// Microseconds since this tracer's epoch (steady clock).
  [[nodiscard]] double now_us() const noexcept;

  // ------------------------------------------------------ real-clock events
  /// RAII span on the wall-clock track: records begin at construction and
  /// appends a complete event at destruction.  No-op while disabled.
  class Span {
   public:
    Span(Tracer& tracer, std::string name,
         std::initializer_list<TraceArg> args = {});
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attach an arg after construction (e.g. a result computed inside).
    void arg(std::string key, std::string value);

   private:
    Tracer* tracer_;
    bool active_;
    std::string name_;
    double start_us_ = 0.0;
    std::vector<TraceArg> args_;
  };

  /// Zero-duration marker on the wall-clock track.
  void instant(std::string name, std::initializer_list<TraceArg> args = {});

  /// Chrome counter event ('C') on the wall-clock track: every arg is one
  /// series of the counter named `name`.  Arg values MUST be numeric strings
  /// (use trace_double / std::to_string) — write_chrome_trace serializes
  /// counter args unquoted so Chrome/Perfetto render the series stacked.
  void counter(std::string name, std::vector<TraceArg> args);

  /// Counter event on a simulated job's track group at sim time `t_s`
  /// (same clock as sim_task timestamps).  Same numeric-args contract as
  /// counter(); used by the deterministic sim-grid sampler.
  void sim_counter(std::uint32_t pid, std::string name, double t_s,
                   std::vector<TraceArg> args);

  // ------------------------------------------------- simulated-clock tracks
  /// Allocate a process-id track group for one simulated job and emit its
  /// process_name metadata ("sim: <job_name>").  Returns the pid to pass to
  /// sim_task(); call only while enabled.
  std::uint32_t begin_sim_job(const std::string& job_name);

  /// Name a (pid, tid) sim track, e.g. "node 2 map slot 1" (deduplicated).
  void name_sim_track(std::uint32_t pid, std::uint32_t tid, std::string name);

  /// One simulated duration event [start_s, end_s] (sim seconds).  The
  /// rendered timestamp is offset by `ts_offset_s` (e.g. a phase's position
  /// within its job) purely for visualization; the exact phase-relative
  /// start_s/end_s are appended as %.17g args for lossless reconstruction.
  void sim_task(std::uint32_t pid, std::uint32_t tid, std::string name,
                double start_s, double end_s,
                std::initializer_list<TraceArg> args = {},
                double ts_offset_s = 0.0);

  /// Overload for runtime-built arg lists (e.g. optional per-task byte args).
  void sim_task(std::uint32_t pid, std::uint32_t tid, std::string name,
                double start_s, double end_s, std::vector<TraceArg> args,
                double ts_offset_s);

  // --------------------------------------------------------------- plumbing
  void append(TraceEvent event);
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// Drop all recorded events and sim-track state (pids restart at 2).
  void clear();

  /// Serialize everything recorded so far as Chrome trace-event JSON.
  void write_chrome_trace(std::ostream& out) const;

  /// write_chrome_trace() to the configured output path, if any.
  /// Returns true when a file was written.
  bool flush() const;

  ~Tracer();

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::string output_path_;
  std::vector<TraceEvent> events_;
  std::uint32_t next_sim_pid_ = kRealPid + 1;
  std::set<std::pair<std::uint32_t, std::uint32_t>> named_tracks_;
  std::chrono::steady_clock::time_point epoch_;
};

/// %.17g — the round-trip-exact double rendering used for trace args.
[[nodiscard]] std::string trace_double(double value);

}  // namespace mrmc::obs

// Compatibility shim over core::candidates — the banding math, bucket
// hashing, and S-curve live there now (see candidates.hpp); this header
// keeps the original LshIndex / greedy_cluster_indexed surface working.
//
// greedy_cluster_indexed() is a drop-in for greedy_cluster() that consults
// the banded bucket index for candidate representatives instead of scanning
// all of them; with a well-matched band shape it returns the same clustering
// orders of magnitude faster on large, diverse inputs (see
// bench/ablation_lsh_index).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/candidates.hpp"
#include "core/greedy.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

// The S-curve helpers moved to candidates.hpp; re-exported for existing
// callers.
using candidates::lsh_collision_probability;
using candidates::lsh_threshold;

struct LshParams {
  std::size_t bands = 10;  ///< must divide the sketch length
  std::uint64_t seed = 0x5ca1ab1eULL;
};

/// Buckets sketch ids by banded hashes.  Thin wrapper over
/// candidates::LshBucketIndex with the historical constructor/signature.
class LshIndex {
 public:
  LshIndex(std::size_t sketch_size, const LshParams& params)
      : index_(sketch_size,
               candidates::validated_band_shape(sketch_size, params.bands),
               params.seed) {}

  [[nodiscard]] std::size_t bands() const noexcept { return index_.bands(); }
  [[nodiscard]] std::size_t rows() const noexcept { return index_.rows(); }

  /// Insert a sketch under `id`.
  void insert(int id, const Sketch& sketch) { index_.insert(id, sketch); }

  /// All ids sharing at least one band bucket with `sketch`, deduplicated,
  /// in insertion order.
  [[nodiscard]] std::vector<int> candidates(const Sketch& sketch) const {
    return index_.candidates(sketch);
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }

 private:
  candidates::LshBucketIndex index_;
};

/// Algorithm 1 with LSH candidate pruning: identical semantics to
/// greedy_cluster when every qualifying representative collides in some
/// band (guaranteed-probabilistically by the S-curve; exact agreement is
/// checked in tests for well-separated data).
GreedyResult greedy_cluster_indexed(std::span<const Sketch> sketches,
                                    const GreedyParams& params,
                                    const LshParams& lsh = {});

}  // namespace mrmc::core

# Empty compiler generated dependencies file for mrmc_mr.
# This may be replaced when dependencies are built.

// Approximate serialized-size accounting used for shuffle-volume and disk
// I/O modeling.  Matches what a Hadoop Writable would roughly occupy.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrmc::mr {

template <typename T>
double approx_bytes(const T& value);

namespace detail {

template <typename T>
struct is_pair : std::false_type {};
template <typename A, typename B>
struct is_pair<std::pair<A, B>> : std::true_type {};

template <typename T>
struct is_vector : std::false_type {};
template <typename T, typename A>
struct is_vector<std::vector<T, A>> : std::true_type {};

}  // namespace detail

/// Size estimate: arithmetic types by sizeof, strings by length + header,
/// vectors and pairs recursively.  Unknown aggregates fall back to sizeof.
template <typename T>
double approx_bytes(const T& value) {
  if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    (void)value;
    return static_cast<double>(sizeof(T));
  } else if constexpr (std::is_same_v<T, std::string>) {
    return static_cast<double>(value.size()) + 8.0;
  } else if constexpr (detail::is_pair<T>::value) {
    return approx_bytes(value.first) + approx_bytes(value.second);
  } else if constexpr (detail::is_vector<T>::value) {
    double total = 8.0;
    for (const auto& element : value) total += approx_bytes(element);
    return total;
  } else {
    (void)value;
    return static_cast<double>(sizeof(T));
  }
}

}  // namespace mrmc::mr

// Typed MapReduce job runner — the library's Hadoop substitute.
//
// Contract (identical to Hadoop's):
//   map    : In -> [(K, V)]            (one call per input record)
//   combine: (K, [V]) -> [(K, V)]      (optional, per map task)
//   reduce : (K, [V]) -> [Out]         (one call per key group)
//
// Execution is real (tasks run on a thread pool and produce the actual
// output); *cluster time* is simulated: every task yields a TaskSpec
// (deterministic work model + byte accounting) which the SimScheduler
// places onto the configured nodes, giving the job a reproducible
// simulated makespan (JobStats::timeline).  Map-task failures can be
// injected; a failed attempt is retried and its cost double-counted,
// like a speculative re-execution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "mr/bytes.hpp"
#include "mr/cluster.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr {

using Counters = std::map<std::string, long>;

/// Counting context handed to context-aware reducers; per-task counters are
/// merged into JobStats::counters exactly like the map side's Emitter.
class ReduceContext {
 public:
  void count(const std::string& counter, long delta = 1) {
    counters_[counter] += delta;
  }

  [[nodiscard]] Counters& counters() noexcept { return counters_; }

 private:
  Counters counters_;
};

/// Collects (key, value) pairs and named counters from map/combine calls.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  void count(const std::string& counter, long delta = 1) { counters_[counter] += delta; }

  [[nodiscard]] std::vector<std::pair<K, V>>& pairs() noexcept { return pairs_; }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
  Counters counters_;
};

struct JobConfig {
  std::string name = "job";
  std::size_t num_reducers = 4;
  std::size_t records_per_split = 1024;  ///< map input split granularity
  std::size_t threads = 0;               ///< real execution threads (0 = hw)
  ClusterConfig cluster{};
  double map_failure_rate = 0.0;  ///< injected per-map-task failure probability
  /// Injected stragglers: with this probability a map task's modeled work
  /// is multiplied by `straggler_slowdown` (a slow node / data skew).
  double straggler_rate = 0.0;
  double straggler_slowdown = 4.0;
  std::uint64_t seed = 1;
};

struct JobStats {
  std::size_t map_tasks = 0;
  std::size_t reduce_tasks = 0;
  std::size_t input_records = 0;
  std::size_t map_output_records = 0;     ///< after the combiner, if any
  std::size_t pre_combine_records = 0;    ///< before the combiner
  std::size_t reduce_groups = 0;
  std::size_t output_records = 0;
  std::size_t map_retries = 0;
  double shuffle_bytes = 0.0;
  double map_cpu_s = 0.0;     ///< measured thread CPU time (not wall), informational
  double reduce_cpu_s = 0.0;  ///< ditto, summed across reduce tasks
  Counters counters;
  JobTimeline timeline;       ///< deterministic simulated cluster time
};

template <typename Out>
struct JobResult {
  std::vector<Out> output;
  JobStats stats;
};

template <typename In, typename K, typename V, typename Out>
class Job {
 public:
  using Mapper = std::function<void(const In&, Emitter<K, V>&)>;
  using Reducer =
      std::function<void(const K&, std::vector<V>&, std::vector<Out>&)>;
  /// Reducer overload that can also bump named counters (ReduceContext).
  using ContextReducer = std::function<void(const K&, std::vector<V>&,
                                            std::vector<Out>&, ReduceContext&)>;
  using Combiner = std::function<void(const K&, std::vector<V>&, Emitter<K, V>&)>;
  using Partitioner = std::function<std::size_t(const K&)>;
  using MapWorkModel = std::function<double(const In&)>;
  using ReduceWorkModel = std::function<double(const K&, std::size_t)>;

  Job(JobConfig config, Mapper mapper, Reducer reducer)
      : config_(std::move(config)),
        mapper_(std::move(mapper)),
        reducer_(std::move(reducer)) {
    MRMC_REQUIRE(config_.num_reducers >= 1, "need at least one reducer");
    MRMC_REQUIRE(config_.records_per_split >= 1, "split size must be positive");
    MRMC_CHECK(mapper_ != nullptr, "mapper required");
    MRMC_CHECK(reducer_ != nullptr, "reducer required");
  }

  Job(JobConfig config, Mapper mapper, ContextReducer reducer)
      : config_(std::move(config)),
        mapper_(std::move(mapper)),
        context_reducer_(std::move(reducer)) {
    MRMC_REQUIRE(config_.num_reducers >= 1, "need at least one reducer");
    MRMC_REQUIRE(config_.records_per_split >= 1, "split size must be positive");
    MRMC_CHECK(mapper_ != nullptr, "mapper required");
    MRMC_CHECK(context_reducer_ != nullptr, "reducer required");
  }

  Job& with_combiner(Combiner combiner) {
    combiner_ = std::move(combiner);
    return *this;
  }
  Job& with_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
    return *this;
  }
  /// Deterministic per-record CPU work estimate (sim-time units).
  Job& with_map_work(MapWorkModel model) {
    map_work_ = std::move(model);
    return *this;
  }
  Job& with_reduce_work(ReduceWorkModel model) {
    reduce_work_ = std::move(model);
    return *this;
  }

  /// Run with automatic input splitting (round-robin locality like a DFS
  /// writing splits across nodes).
  JobResult<Out> run(const std::vector<In>& input) {
    std::vector<std::vector<In>> splits;
    std::vector<int> locality;
    const std::size_t per_split = config_.records_per_split;
    for (std::size_t begin = 0; begin < input.size(); begin += per_split) {
      const std::size_t end = std::min(begin + per_split, input.size());
      splits.emplace_back(input.begin() + static_cast<long>(begin),
                          input.begin() + static_cast<long>(end));
      locality.push_back(static_cast<int>((begin / per_split) %
                                          config_.cluster.nodes));
    }
    if (splits.empty()) splits.emplace_back();
    if (locality.empty()) locality.push_back(0);
    return run_splits(splits, locality);
  }

  /// Run with caller-provided splits (e.g. SimDfs blocks) and their
  /// preferred replica nodes.
  JobResult<Out> run_splits(const std::vector<std::vector<In>>& splits,
                            const std::vector<int>& preferred_nodes) {
    MRMC_REQUIRE(splits.size() == preferred_nodes.size(),
                 "one preferred node per split");
    auto& tracer = obs::Tracer::global();
    obs::Tracer::Span job_span(tracer, "mr.job " + config_.name,
                               {{"maps", std::to_string(splits.size())},
                                {"reducers",
                                 std::to_string(config_.num_reducers)}});
    JobResult<Out> result;
    JobStats& stats = result.stats;
    stats.map_tasks = splits.size();
    stats.reduce_tasks = config_.num_reducers;

    // ----------------------------------------------------------- map phase
    std::vector<MapTaskOutput> map_outputs(splits.size());

    common::ThreadPool pool(config_.threads);
    {
      obs::Tracer::Span map_span(tracer, config_.name + "/map");
      pool.parallel_for(splits.size(), [&](std::size_t t) {
        map_outputs[t] = run_map_task(splits[t], preferred_nodes[t], t);
      });
    }

    std::vector<TaskSpec> map_specs;
    map_specs.reserve(map_outputs.size());
    double shuffle_bytes = 0.0;
    for (auto& task : map_outputs) {
      stats.input_records += task.records_in;
      stats.pre_combine_records += task.records_pre_combine;
      stats.map_output_records += task.records_out;
      stats.map_cpu_s += task.cpu_s;
      if (task.retried) ++stats.map_retries;
      for (const auto& [name, value] : task.counters) stats.counters[name] += value;
      shuffle_bytes += task.spec.output_bytes;
      map_specs.push_back(task.spec);
    }
    stats.shuffle_bytes = shuffle_bytes;

    // ------------------------------------------------------------- shuffle
    // Gather each reducer's input from every map task, in task order so the
    // overall run is deterministic regardless of thread scheduling.
    std::vector<std::vector<std::pair<K, V>>> reducer_inputs(config_.num_reducers);
    {
      obs::Tracer::Span shuffle_span(
          tracer, config_.name + "/shuffle",
          {{"bytes", obs::trace_double(shuffle_bytes)}});
      for (auto& task : map_outputs) {
        for (std::size_t r = 0; r < config_.num_reducers; ++r) {
          auto& bucket = task.partitions[r];
          reducer_inputs[r].insert(reducer_inputs[r].end(),
                                   std::make_move_iterator(bucket.begin()),
                                   std::make_move_iterator(bucket.end()));
        }
      }
    }

    // -------------------------------------------------------- reduce phase
    std::vector<ReduceTaskOutput> reduce_outputs(config_.num_reducers);
    {
      obs::Tracer::Span reduce_span(tracer, config_.name + "/reduce");
      pool.parallel_for(config_.num_reducers, [&](std::size_t r) {
        reduce_outputs[r] = run_reduce_task(reducer_inputs[r]);
      });
    }

    std::vector<TaskSpec> reduce_specs;
    reduce_specs.reserve(reduce_outputs.size());
    for (auto& task : reduce_outputs) {
      stats.reduce_groups += task.groups;
      stats.reduce_cpu_s += task.cpu_s;
      for (const auto& [name, value] : task.counters) stats.counters[name] += value;
      reduce_specs.push_back(task.spec);
      stats.output_records += task.output.size();
      result.output.insert(result.output.end(),
                           std::make_move_iterator(task.output.begin()),
                           std::make_move_iterator(task.output.end()));
    }

    // --------------------------------------------------- simulated timeline
    const SimScheduler scheduler(config_.cluster);
    stats.timeline = simulate_job(scheduler, map_specs, shuffle_bytes,
                                  reduce_specs, config_.name);
    export_stats(stats);
    job_span.arg("sim_total_s", obs::trace_double(stats.timeline.total_s));
    return result;
  }

 private:
  struct MapTaskOutput {
    std::vector<std::vector<std::pair<K, V>>> partitions;
    TaskSpec spec;
    Counters counters;
    double cpu_s = 0.0;
    std::size_t records_in = 0;
    std::size_t records_pre_combine = 0;
    std::size_t records_out = 0;
    bool retried = false;
  };
  struct ReduceTaskOutput {
    std::vector<Out> output;
    TaskSpec spec;
    Counters counters;
    double cpu_s = 0.0;
    std::size_t groups = 0;
  };

  /// Publish the finished job's stats to the global metrics registry and
  /// the engine log; user counters are exported as `mr.counter.<name>`.
  void export_stats(const JobStats& stats) const {
    auto& registry = obs::Registry::global();
    registry.counter("mr.jobs").inc();
    registry.counter("mr.map_tasks").add(static_cast<long>(stats.map_tasks));
    registry.counter("mr.reduce_tasks")
        .add(static_cast<long>(stats.reduce_tasks));
    registry.counter("mr.map_retries").add(static_cast<long>(stats.map_retries));
    registry.counter("mr.input_records")
        .add(static_cast<long>(stats.input_records));
    registry.counter("mr.map_output_records")
        .add(static_cast<long>(stats.map_output_records));
    registry.counter("mr.output_records")
        .add(static_cast<long>(stats.output_records));
    for (const auto& [name, value] : stats.counters) {
      registry.counter("mr.counter." + name).add(value);
    }

    static const obs::Logger logger("mr.job");
    if (logger.enabled(obs::LogLevel::kInfo)) {
      logger.info("job finished",
                  {{"job", config_.name},
                   {"maps", stats.map_tasks},
                   {"reducers", stats.reduce_tasks},
                   {"input_records", stats.input_records},
                   {"output_records", stats.output_records},
                   {"map_retries", stats.map_retries},
                   {"shuffle_bytes", stats.shuffle_bytes},
                   {"map_cpu_s", stats.map_cpu_s},
                   {"reduce_cpu_s", stats.reduce_cpu_s},
                   {"sim_total_s", stats.timeline.total_s}});
    }
  }

  [[nodiscard]] std::size_t partition_of(const K& key) const {
    if (partitioner_) return partitioner_(key) % config_.num_reducers;
    return std::hash<K>{}(key) % config_.num_reducers;
  }

  /// Sort pairs by key and fold each group through `fn`.
  template <typename Fn>
  static void for_each_group(std::vector<std::pair<K, V>>& pairs, Fn&& fn) {
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t begin = 0;
    while (begin < pairs.size()) {
      std::size_t end = begin + 1;
      while (end < pairs.size() && !(pairs[begin].first < pairs[end].first)) ++end;
      std::vector<V> values;
      values.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        values.push_back(std::move(pairs[i].second));
      }
      fn(pairs[begin].first, values);
      begin = end;
    }
  }

  MapTaskOutput run_map_task(const std::vector<In>& split, int preferred_node,
                             std::size_t task_index) {
    MapTaskOutput task;

    // Thread CPU clock, not wall: the task shares a core with its siblings.
    common::ThreadCpuStopwatch watch;
    Emitter<K, V> emitter;
    double input_bytes = 0.0;
    double work = 0.0;
    for (const In& record : split) {
      mapper_(record, emitter);
      input_bytes += approx_bytes(record);
      // Default work model: 1 microsecond of reference-node CPU per record
      // (typical lightweight Hadoop record processing).
      work += map_work_ ? map_work_(record) : 1e-6;
    }
    task.records_in = split.size();
    task.records_pre_combine = emitter.pairs().size();

    std::vector<std::pair<K, V>> pairs = std::move(emitter.pairs());
    if (combiner_) {
      Emitter<K, V> combined;
      for_each_group(pairs, [&](const K& key, std::vector<V>& values) {
        combiner_(key, values, combined);
      });
      pairs = std::move(combined.pairs());
      for (const auto& [name, value] : combined.counters()) {
        emitter.counters()[name] += value;
      }
    }
    task.records_out = pairs.size();

    task.partitions.resize(config_.num_reducers);
    double output_bytes = 0.0;
    for (auto& pair : pairs) {
      output_bytes += approx_bytes(pair);
      task.partitions[partition_of(pair.first)].push_back(std::move(pair));
    }

    task.cpu_s = watch.seconds();
    task.counters = std::move(emitter.counters());
    task.spec = TaskSpec{work, input_bytes, output_bytes, preferred_node};

    if (config_.map_failure_rate > 0.0 || config_.straggler_rate > 0.0) {
      common::Xoshiro256 rng(common::mix64(config_.seed ^ (task_index + 1)));
      if (rng.chance(config_.map_failure_rate)) {
        // The failed attempt's cost is paid again by the retry.
        task.retried = true;
        task.spec.work *= 2.0;
        task.spec.input_bytes *= 2.0;
      }
      if (rng.chance(config_.straggler_rate)) {
        task.spec.work *= config_.straggler_slowdown;
      }
    }
    return task;
  }

  ReduceTaskOutput run_reduce_task(std::vector<std::pair<K, V>>& pairs) {
    ReduceTaskOutput task;

    common::ThreadCpuStopwatch watch;
    double input_bytes = 0.0;
    for (const auto& pair : pairs) input_bytes += approx_bytes(pair);

    ReduceContext context;
    double work = 0.0;
    for_each_group(pairs, [&](const K& key, std::vector<V>& values) {
      ++task.groups;
      work += reduce_work_ ? reduce_work_(key, values.size())
                           : 1e-6 * static_cast<double>(values.size());
      if (context_reducer_) {
        context_reducer_(key, values, task.output, context);
      } else {
        reducer_(key, values, task.output);
      }
    });
    task.counters = std::move(context.counters());

    double output_bytes = 0.0;
    for (const Out& out : task.output) output_bytes += approx_bytes(out);
    task.cpu_s = watch.seconds();
    task.spec = TaskSpec{work, input_bytes, output_bytes, -1};
    return task;
  }

  JobConfig config_;
  Mapper mapper_;
  Reducer reducer_;
  ContextReducer context_reducer_;
  Combiner combiner_;
  Partitioner partitioner_;
  MapWorkModel map_work_;
  ReduceWorkModel reduce_work_;
};

}  // namespace mrmc::mr

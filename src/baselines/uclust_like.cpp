#include "baselines/uclust_like.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/word_stats.hpp"
#include "bio/alignment.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace mrmc::baselines {

BaselineResult uclust_cluster(std::span<const bio::FastaRecord> reads,
                              const UclustParams& params) {
  MRMC_REQUIRE(params.identity > 0.0 && params.identity <= 1.0,
               "identity in (0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  result.labels.assign(reads.size(), -1);
  if (reads.empty()) return result;

  struct Representative {
    std::size_t read = 0;
    std::vector<std::uint16_t> words;
  };
  std::vector<Representative> reps;

  for (std::size_t query = 0; query < reads.size(); ++query) {
    const auto query_words = word_counts(reads[query].seq, params.word_size);

    // U-sort: rank representatives by common-word count, descending.
    std::vector<std::pair<std::size_t, std::size_t>> ranked;  // (words, rep)
    ranked.reserve(reps.size());
    for (std::size_t r = 0; r < reps.size(); ++r) {
      ++result.comparisons;
      const std::size_t shared = common_words(reps[r].words, query_words);
      if (shared > 0) ranked.emplace_back(shared, r);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first > b.first || (a.first == b.first && a.second < b.second);
    });

    int assigned = -1;
    std::size_t rejects = 0;
    for (const auto& [shared, r] : ranked) {
      if (rejects >= params.max_rejects) break;
      ++result.alignments;
      const double identity = bio::global_identity(
          reads[reps[r].read].seq, reads[query].seq, {.band = params.band});
      if (identity >= params.identity) {
        assigned = static_cast<int>(r);
        break;
      }
      ++rejects;
    }
    if (assigned < 0) {
      assigned = static_cast<int>(reps.size());
      reps.push_back({query, query_words});
    }
    result.labels[query] = assigned;
  }

  result.num_clusters = reps.size();
  result.wall_s = watch.seconds();
  return result;
}

}  // namespace mrmc::baselines

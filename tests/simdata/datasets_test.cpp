#include "simdata/datasets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace mrmc::simdata {
namespace {

// ----------------------------------------------------------- Table II specs

TEST(WholeMetagenomeRegistry, HasAllFifteenSamples) {
  const auto& registry = whole_metagenome_registry();
  ASSERT_EQ(registry.size(), 15u);
  std::set<std::string> sids;
  for (const auto& spec : registry) sids.insert(spec.sid);
  for (const char* sid : {"S1", "S5", "S9", "S12", "S13", "S14", "R1"}) {
    EXPECT_TRUE(sids.contains(sid)) << sid;
  }
}

TEST(WholeMetagenomeRegistry, PaperReadCountsMatchTableII) {
  EXPECT_EQ(whole_metagenome_spec("S1").paper_reads, 49998u);
  EXPECT_EQ(whole_metagenome_spec("S11").paper_reads, 99998u);
  EXPECT_EQ(whole_metagenome_spec("S12").paper_reads, 99994u);
  EXPECT_EQ(whole_metagenome_spec("S13").paper_reads, 4000u);
  EXPECT_EQ(whole_metagenome_spec("S14").paper_reads, 6000u);
  EXPECT_EQ(whole_metagenome_spec("R1").paper_reads, 7137u);
}

TEST(WholeMetagenomeRegistry, SpeciesCountsMatchTableII) {
  EXPECT_EQ(whole_metagenome_spec("S1").species.size(), 2u);
  EXPECT_EQ(whole_metagenome_spec("S9").species.size(), 3u);
  EXPECT_EQ(whole_metagenome_spec("S11").species.size(), 4u);
  EXPECT_EQ(whole_metagenome_spec("S12").species.size(), 6u);
}

TEST(WholeMetagenomeRegistry, GcContentsMatchTableII) {
  const auto& s1 = whole_metagenome_spec("S1");
  EXPECT_DOUBLE_EQ(s1.species[0].gc, 0.44);  // Bacillus halodurans [0.44]
  const auto& s8 = whole_metagenome_spec("S8");
  EXPECT_DOUBLE_EQ(s8.species[1].gc, 0.65);  // Rhodospirillum rubrum [0.65]
}

TEST(WholeMetagenomeRegistry, RatiosMatchTableII) {
  const auto& s9 = whole_metagenome_spec("S9");  // 1:1:8
  EXPECT_EQ(s9.species[0].ratio, 1);
  EXPECT_EQ(s9.species[2].ratio, 8);
  const auto& s5 = whole_metagenome_spec("S5");  // 1:2
  EXPECT_EQ(s5.species[1].ratio, 2);
}

TEST(WholeMetagenomeRegistry, R1HasNoGroundTruth) {
  const auto& r1 = whole_metagenome_spec("R1");
  EXPECT_FALSE(r1.has_ground_truth);
  EXPECT_EQ(r1.ground_truth_clusters, -1);
}

TEST(WholeMetagenomeRegistry, UnknownSidThrows) {
  EXPECT_THROW(whole_metagenome_spec("S99"), common::InvalidArgument);
}

TEST(WholeMetagenomeRegistry, BranchLengthsRespectTaxonomicOrdering) {
  // S1 is species-level (closest), S8 order-level: S8's species must sit
  // farther from their ancestor.
  EXPECT_LT(whole_metagenome_spec("S1").species[0].branch,
            whole_metagenome_spec("S8").species[0].branch);
}

// -------------------------------------------------------- Table II builder

TEST(BuildWholeMetagenome, ExplicitReadCount) {
  const auto sample =
      build_whole_metagenome(whole_metagenome_spec("S1"), {.reads = 120});
  EXPECT_EQ(sample.size(), 120u);
  EXPECT_EQ(sample.labels.size(), 120u);
  EXPECT_EQ(sample.species.size(), 2u);
}

TEST(BuildWholeMetagenome, ScaleDefaultsFromPaperReads) {
  WholeMetagenomeOptions options;
  options.scale = 0.01;
  const auto sample =
      build_whole_metagenome(whole_metagenome_spec("S1"), options);
  EXPECT_EQ(sample.size(), 499u);  // 49998 * 0.01
}

TEST(BuildWholeMetagenome, RatioSkewIsVisible) {
  const auto sample =
      build_whole_metagenome(whole_metagenome_spec("S9"), {.reads = 1000});
  // S9 is 1:1:8 -> species 2 dominates.
  const long dominant = std::count(sample.labels.begin(), sample.labels.end(), 2);
  EXPECT_NEAR(static_cast<double>(dominant), 800.0, 10.0);
}

TEST(BuildWholeMetagenome, R1LabelsAreCleared) {
  const auto sample =
      build_whole_metagenome(whole_metagenome_spec("R1"), {.reads = 50});
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(sample.labels.empty());
  EXPECT_FALSE(sample.has_labels());
}

TEST(BuildWholeMetagenome, DeterministicPerSeed) {
  const auto& spec = whole_metagenome_spec("S3");
  const auto a = build_whole_metagenome(spec, {.reads = 40, .seed = 9});
  const auto b = build_whole_metagenome(spec, {.reads = 40, .seed = 9});
  EXPECT_EQ(a.reads, b.reads);
  const auto c = build_whole_metagenome(spec, {.reads = 40, .seed = 10});
  EXPECT_NE(a.reads, c.reads);
}

TEST(BuildWholeMetagenome, ReadLengthHonored) {
  const auto sample = build_whole_metagenome(whole_metagenome_spec("S2"),
                                             {.reads = 30, .read_length = 150});
  for (const auto& read : sample.reads) {
    EXPECT_GE(read.seq.size(), 120u);
    EXPECT_LE(read.seq.size(), 180u);
  }
}

// ------------------------------------------------------------ Table I specs

TEST(EnvironmentalRegistry, HasAllEightSamples) {
  ASSERT_EQ(environmental_registry().size(), 8u);
  EXPECT_EQ(environmental_spec("53R").paper_reads, 11218u);
  EXPECT_EQ(environmental_spec("FS396").paper_reads, 73657u);
  EXPECT_EQ(environmental_spec("112R").depth_m, 4121);
  EXPECT_DOUBLE_EQ(environmental_spec("FS312").temp_c, 31.2);
}

TEST(EnvironmentalRegistry, UnknownSidThrows) {
  EXPECT_THROW(environmental_spec("99Z"), common::InvalidArgument);
}

TEST(BuildEnvironmental, ScaledReadCount) {
  Env16sOptions options;
  options.scale = 1.0 / 100.0;
  const auto sample = build_environmental(environmental_spec("53R"), options);
  EXPECT_EQ(sample.size(), 112u);  // 11218 / 100
}

TEST(BuildEnvironmental, ShortReadsNearSixtyBp) {
  const auto sample =
      build_environmental(environmental_spec("55R"), {.reads = 100});
  double mean = 0;
  for (const auto& read : sample.reads) mean += static_cast<double>(read.seq.size());
  mean /= 100.0;
  EXPECT_NEAR(mean, 60.0, 10.0);
}

TEST(BuildEnvironmental, ManyLatentOtusAppear) {
  const auto sample =
      build_environmental(environmental_spec("112R"), {.reads = 400});
  std::set<int> otus(sample.labels.begin(), sample.labels.end());
  EXPECT_GT(otus.size(), 10u);
}

// ------------------------------------------------------------ 16S simulated

TEST(Build16sSimulated, DefaultsToFortyThreeGenomes) {
  const auto sample = build_16s_simulated({.reads = 200});
  EXPECT_EQ(sample.size(), 200u);
  EXPECT_EQ(sample.species.size(), 43u);
}

TEST(Build16sSimulated, ErrorRateLowersPairwiseIdentity) {
  const auto clean = build_16s_simulated({.reads = 60, .error_rate = 0.0});
  const auto noisy = build_16s_simulated({.reads = 60, .error_rate = 0.05});
  // Same-OTU identical-window reads are exact duplicates when error-free.
  // Count exact duplicate pairs as a proxy.
  auto duplicate_pairs = [](const LabeledReads& sample) {
    int pairs = 0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        if (sample.reads[i].seq == sample.reads[j].seq) ++pairs;
      }
    }
    return pairs;
  };
  EXPECT_GT(duplicate_pairs(clean), duplicate_pairs(noisy));
}

}  // namespace
}  // namespace mrmc::simdata

#include "eval/candidate_recall.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kernels.hpp"

namespace mrmc::eval {

CandidateRecallReport candidate_recall(
    const core::kernels::SketchMatrix& sketches, double theta,
    const core::candidates::Params& params, core::SketchEstimator estimator,
    std::size_t sample_rows, common::ThreadPool* pool) {
  namespace candidates = core::candidates;

  CandidateRecallReport report;
  const std::size_t n = sample_rows == 0
                            ? sketches.rows()
                            : std::min(sketches.rows(), sample_rows);
  report.reads = n;
  if (n < 2) return report;

  // Materialize the subsample so the backend sees exactly the rows the
  // oracle scores (banding on the full matrix would propose out-of-sample
  // pairs and skew precision).
  core::kernels::SketchMatrix sample(n, sketches.cols());
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = sketches.row(i);
    std::copy(src.begin(), src.end(), sample.row(i).begin());
  }

  if (params.backend == candidates::Backend::kLshBanded) {
    report.shape = candidates::resolve_band_shape(params, sample.cols(), theta);
  }
  const std::vector<candidates::Pair> proposed =
      candidates::enumerate_pairs(sample, params, theta, pool);
  report.candidate_pairs = proposed.size();

  // Exact oracle: score every pair, count those >= θ and how many of them
  // the backend proposed.  enumerate_pairs output is sorted, so membership
  // is a binary search.  Per-row partial counts keep the parallel sweep
  // deterministic.
  const bool set_based = estimator == core::SketchEstimator::kSetBased;
  const core::SortedSketchStore store =
      set_based ? core::SortedSketchStore(sample) : core::SortedSketchStore();
  const double inv_cols =
      sample.cols() == 0 ? 0.0 : 1.0 / static_cast<double>(sample.cols());

  std::vector<std::size_t> row_true(n, 0);
  std::vector<std::size_t> row_recovered(n, 0);
  auto score_row = [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double sim =
          set_based ? store.jaccard(i, j)
                    : static_cast<double>(core::kernels::count_equal(
                          sample.row(i), sample.row(j))) *
                          inv_cols;
      if (sim < theta) continue;
      ++row_true[i];
      const candidates::Pair pair{static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j)};
      if (std::binary_search(proposed.begin(), proposed.end(), pair)) {
        ++row_recovered[i];
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n, score_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) score_row(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    report.true_pairs += row_true[i];
    report.recovered_pairs += row_recovered[i];
  }

  report.recall = report.true_pairs == 0
                      ? 1.0
                      : static_cast<double>(report.recovered_pairs) /
                            static_cast<double>(report.true_pairs);
  report.precision = report.candidate_pairs == 0
                         ? 0.0
                         : static_cast<double>(report.recovered_pairs) /
                               static_cast<double>(report.candidate_pairs);
  return report;
}

}  // namespace mrmc::eval

# Empty dependencies file for mrmc_bio.
# This may be replaced when dependencies are built.

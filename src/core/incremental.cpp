#include "core/incremental.hpp"

#include <algorithm>

#include "bio/kmer.hpp"
#include "common/error.hpp"

namespace mrmc::core {

namespace {

Sketch sorted_unique(const Sketch& sketch) {
  Sketch s = sketch;
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(MinHashParams hasher,
                                           GreedyParams greedy, LshParams lsh)
    : hasher_(hasher), greedy_(greedy), index_(hasher.num_hashes, lsh) {}

int IncrementalClusterer::add(std::string_view seq) {
  const Sketch sketch = hasher_.sketch(seq);
  const bool set_based = greedy_.estimator == SketchEstimator::kSetBased;
  const Sketch sorted = set_based ? sorted_unique(sketch) : Sketch{};

  int assigned = -1;
  for (const int cluster : index_.candidates(sketch)) {
    const double similarity =
        set_based
            ? bio::exact_jaccard(sorted_representatives_[cluster], sorted)
            : component_match_similarity(representatives_[cluster], sketch);
    if (similarity >= greedy_.theta) {
      assigned = cluster;
      break;
    }
  }
  if (assigned < 0) {
    assigned = static_cast<int>(representatives_.size());
    index_.insert(assigned, sketch);
    representatives_.push_back(sketch);
    sorted_representatives_.push_back(set_based ? sorted : Sketch{});
    sizes_.push_back(0);
  }
  ++sizes_[assigned];
  ++reads_added_;
  return assigned;
}

std::vector<int> IncrementalClusterer::add_all(
    std::span<const std::string_view> seqs) {
  std::vector<int> labels;
  labels.reserve(seqs.size());
  for (const auto seq : seqs) labels.push_back(add(seq));
  return labels;
}

const Sketch& IncrementalClusterer::representative_sketch(int label) const {
  MRMC_REQUIRE(label >= 0 &&
                   static_cast<std::size_t>(label) < representatives_.size(),
               "unknown cluster label");
  return representatives_[static_cast<std::size_t>(label)];
}

}  // namespace mrmc::core

file(REMOVE_RECURSE
  "CMakeFiles/mrmc_bio.dir/alignment.cpp.o"
  "CMakeFiles/mrmc_bio.dir/alignment.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/dna.cpp.o"
  "CMakeFiles/mrmc_bio.dir/dna.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/fasta.cpp.o"
  "CMakeFiles/mrmc_bio.dir/fasta.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/fastq.cpp.o"
  "CMakeFiles/mrmc_bio.dir/fastq.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/gotoh.cpp.o"
  "CMakeFiles/mrmc_bio.dir/gotoh.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/kmer.cpp.o"
  "CMakeFiles/mrmc_bio.dir/kmer.cpp.o.d"
  "CMakeFiles/mrmc_bio.dir/seq_stats.cpp.o"
  "CMakeFiles/mrmc_bio.dir/seq_stats.cpp.o.d"
  "libmrmc_bio.a"
  "libmrmc_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

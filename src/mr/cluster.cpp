#include "mr/cluster.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mrmc::mr {

SimScheduler::SimScheduler(ClusterConfig config) : config_(config) {
  MRMC_REQUIRE(config_.nodes >= 1, "cluster needs at least one node");
  MRMC_REQUIRE(config_.map_slots_per_node >= 1, "need at least one map slot");
  MRMC_REQUIRE(config_.reduce_slots_per_node >= 1, "need at least one reduce slot");
  MRMC_REQUIRE(config_.node.cpu_rate > 0, "cpu_rate must be positive");
  MRMC_REQUIRE(config_.node.disk_bw > 0 && config_.node.net_bw > 0,
               "bandwidths must be positive");
}

double SimScheduler::task_duration(const TaskSpec& task, bool data_local) const {
  const NodeSpec& node = config_.node;
  const double input_bw = data_local ? node.disk_bw : node.net_bw;
  return config_.task_startup_s + task.work / node.cpu_rate +
         task.input_bytes / input_bw + task.output_bytes / node.disk_bw;
}

double SimScheduler::shuffle_time(double total_bytes) const {
  if (total_bytes <= 0) return 0.0;
  const double remote_fraction =
      config_.nodes <= 1
          ? 0.0
          : 1.0 - 1.0 / static_cast<double>(config_.nodes);
  const double aggregate_bw =
      static_cast<double>(config_.nodes) * config_.node.net_bw;
  const double local_part = total_bytes * (1.0 - remote_fraction) /
                            (static_cast<double>(config_.nodes) * config_.node.disk_bw);
  return total_bytes * remote_fraction / aggregate_bw + local_part;
}

double SimScheduler::fetch_time(double bytes) const {
  if (bytes <= 0) return 0.0;
  const double remote_fraction =
      config_.nodes <= 1
          ? 0.0
          : 1.0 - 1.0 / static_cast<double>(config_.nodes);
  return bytes * remote_fraction / config_.node.net_bw +
         bytes * (1.0 - remote_fraction) / config_.node.disk_bw;
}

PhaseTimeline SimScheduler::schedule_phase(std::span<const TaskSpec> tasks,
                                           std::size_t slots_per_node) const {
  PhaseTimeline timeline;
  timeline.tasks.resize(tasks.size());
  if (tasks.empty()) return timeline;

  // Longest-processing-time-first order for a tighter makespan.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return task_duration(tasks[a], true) > task_duration(tasks[b], true);
  });

  // slot_free[node][slot] = time the slot becomes available.
  std::vector<std::vector<double>> slot_free(
      config_.nodes, std::vector<double>(slots_per_node, 0.0));

  auto earliest_slot = [&](int node) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < slot_free[node].size(); ++s) {
      if (slot_free[node][s] < slot_free[node][best]) best = s;
    }
    return best;
  };

  for (const std::size_t idx : order) {
    const TaskSpec& task = tasks[idx];
    // Find the globally earliest slot.
    int best_node = 0;
    std::size_t best_slot = earliest_slot(0);
    for (int n = 1; n < static_cast<int>(config_.nodes); ++n) {
      const std::size_t s = earliest_slot(n);
      if (slot_free[n][s] < slot_free[best_node][best_slot]) {
        best_node = n;
        best_slot = s;
      }
    }
    // Prefer the replica holder if it is nearly as available (delay-scheduling
    // heuristic: tolerate up to one task startup of extra wait for locality).
    if (task.preferred_node >= 0 &&
        task.preferred_node < static_cast<int>(config_.nodes)) {
      const std::size_t s = earliest_slot(task.preferred_node);
      if (slot_free[task.preferred_node][s] <=
          slot_free[best_node][best_slot] + config_.task_startup_s) {
        best_node = task.preferred_node;
        best_slot = s;
      }
    }

    const bool local =
        task.preferred_node < 0 || task.preferred_node == best_node;
    const double start = slot_free[best_node][best_slot];
    const double end = start + task_duration(task, local);
    slot_free[best_node][best_slot] = end;

    timeline.tasks[idx] = {best_node, static_cast<int>(best_slot), start, end,
                           local};
    if (local) ++timeline.data_local_tasks;
  }

  if (config_.speculative_execution && timeline.tasks.size() >= 3) {
    // Median duration of the phase defines the straggler threshold.
    std::vector<double> durations;
    durations.reserve(timeline.tasks.size());
    for (const auto& task : timeline.tasks) {
      durations.push_back(task.end_s - task.start_s);
    }
    std::nth_element(durations.begin(),
                     durations.begin() + static_cast<long>(durations.size() / 2),
                     durations.end());
    const double median = durations[durations.size() / 2];
    for (auto& task : timeline.tasks) {
      const double duration = task.end_s - task.start_s;
      if (duration > config_.speculation_factor * median) {
        const double rescued_end =
            task.start_s + (config_.speculation_factor + 1.0) * median;
        if (rescued_end < task.end_s) {
          task.end_s = rescued_end;
          ++timeline.speculated_tasks;
        }
      }
    }
  }

  for (const auto& task : timeline.tasks) {
    timeline.makespan_s = std::max(timeline.makespan_s, task.end_s);
  }
  return timeline;
}

namespace {

/// Export one scheduled phase onto the job's sim track group: task i becomes
/// a duration event on the (node, slot) track it ran on.  The timestamp is
/// shifted by `ts_offset_s` so phases line up end to end within the job; the
/// exact phase-relative times travel as args.
void trace_sim_phase(obs::Tracer& tracer, std::uint32_t pid,
                     const char* phase_name, const PhaseTimeline& phase,
                     std::size_t slots_per_node, std::uint32_t tid_base,
                     double ts_offset_s) {
  for (std::size_t i = 0; i < phase.tasks.size(); ++i) {
    const TaskPlacement& task = phase.tasks[i];
    const std::uint32_t tid =
        tid_base + static_cast<std::uint32_t>(task.node) *
                       static_cast<std::uint32_t>(slots_per_node) +
        static_cast<std::uint32_t>(task.slot);
    tracer.name_sim_track(pid, tid,
                          "node " + std::to_string(task.node) + " " +
                              phase_name + " slot " +
                              std::to_string(task.slot));
    tracer.sim_task(pid, tid, std::string(phase_name) + " " + std::to_string(i),
                    task.start_s, task.end_s,
                    {{"phase", phase_name},
                     {"task", std::to_string(i)},
                     {"data_local", task.data_local ? "true" : "false"}},
                    ts_offset_s);
  }
}

}  // namespace

JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const FetchSpec> fetches,
                         std::span<const TaskSpec> reduce_tasks,
                         const std::string& job_name) {
  JobTimeline timeline;
  timeline.map_phase =
      scheduler.schedule_phase(map_tasks, scheduler.config().map_slots_per_node);
  if (fetches.empty()) {
    // Aggregate barrier model: one all-to-all transfer after the map phase.
    timeline.shuffle_s = scheduler.shuffle_time(shuffle_bytes);
  } else {
    // Overlapped model: each fetch starts when its map run is available and
    // the reducer's NIC is free; only the tail beyond the last map task
    // extends the job.  Fetch order per reducer: by producer finish time,
    // map index breaking ties — deterministic regardless of thread count.
    std::vector<std::size_t> order(fetches.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (fetches[a].reducer != fetches[b].reducer) {
                         return fetches[a].reducer < fetches[b].reducer;
                       }
                       const double ready_a =
                           timeline.map_phase.tasks[fetches[a].map_task].end_s;
                       const double ready_b =
                           timeline.map_phase.tasks[fetches[b].map_task].end_s;
                       if (ready_a != ready_b) return ready_a < ready_b;
                       return fetches[a].map_task < fetches[b].map_task;
                     });
    timeline.fetches.reserve(fetches.size());
    double shuffle_done = 0.0;
    std::size_t current_reducer = 0;
    double reducer_free = 0.0;
    bool first = true;
    for (const std::size_t idx : order) {
      const FetchSpec& fetch = fetches[idx];
      MRMC_REQUIRE(fetch.map_task < timeline.map_phase.tasks.size(),
                   "fetch references an unknown map task");
      if (first || fetch.reducer != current_reducer) {
        current_reducer = fetch.reducer;
        reducer_free = 0.0;
        first = false;
      }
      const double ready = timeline.map_phase.tasks[fetch.map_task].end_s;
      const double start = std::max(ready, reducer_free);
      const double end = start + scheduler.fetch_time(fetch.bytes);
      reducer_free = end;
      shuffle_done = std::max(shuffle_done, end);
      timeline.fetches.push_back(
          {fetch.map_task, fetch.reducer, start, end, fetch.bytes});
    }
    timeline.shuffle_s =
        std::max(0.0, shuffle_done - timeline.map_phase.makespan_s);
  }
  timeline.reduce_phase = scheduler.schedule_phase(
      reduce_tasks, scheduler.config().reduce_slots_per_node);
  timeline.total_s = scheduler.config().job_startup_s +
                     timeline.map_phase.makespan_s + timeline.shuffle_s +
                     timeline.reduce_phase.makespan_s;

  auto& registry = obs::Registry::global();
  registry.counter("mr.sim_jobs").inc();
  registry.counter("mr.data_local_tasks")
      .add(static_cast<long>(timeline.map_phase.data_local_tasks +
                             timeline.reduce_phase.data_local_tasks));
  registry.counter("mr.speculated_tasks")
      .add(static_cast<long>(timeline.map_phase.speculated_tasks +
                             timeline.reduce_phase.speculated_tasks));
  registry.counter("mr.shuffle_bytes")
      .add(static_cast<long>(shuffle_bytes));
  auto& map_hist = registry.histogram("mr.map_task_sim_s");
  for (const TaskPlacement& task : timeline.map_phase.tasks) {
    map_hist.observe(task.end_s - task.start_s);
  }
  auto& reduce_hist = registry.histogram("mr.reduce_task_sim_s");
  for (const TaskPlacement& task : timeline.reduce_phase.tasks) {
    reduce_hist.observe(task.end_s - task.start_s);
  }
  registry.histogram("mr.shuffle_sim_s").observe(timeline.shuffle_s);

  auto& collector = obs::report::Collector::global();
  if (collector.enabled()) {
    collector.add(
        report_input(timeline, scheduler.config(), job_name, shuffle_bytes));
  }

  auto& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    const std::uint32_t pid = tracer.begin_sim_job(job_name);
    const ClusterConfig& config = scheduler.config();
    // Cluster shape + startup for offline reconstruction (mrmc_doctor); the
    // doubles travel as %.17g so the offline report is bit-identical.
    obs::TraceEvent config_event;
    config_event.name = "job_config";
    config_event.category = "sim";
    config_event.phase = 'i';
    config_event.pid = pid;
    config_event.args = {
        {"nodes", std::to_string(config.nodes)},
        {"map_slots_per_node", std::to_string(config.map_slots_per_node)},
        {"reduce_slots_per_node", std::to_string(config.reduce_slots_per_node)},
        {"job_startup_s", obs::trace_double(config.job_startup_s)},
        {"shuffle_bytes", obs::trace_double(shuffle_bytes)}};
    tracer.append(std::move(config_event));
    // Reduce tracks live above the map tracks; the shuffle gets its own.
    const auto reduce_tid_base = static_cast<std::uint32_t>(
        config.nodes * config.map_slots_per_node);
    const std::uint32_t shuffle_tid =
        reduce_tid_base + static_cast<std::uint32_t>(
                              config.nodes * config.reduce_slots_per_node);
    const double map_offset = config.job_startup_s;
    const double shuffle_offset = map_offset + timeline.map_phase.makespan_s;
    const double reduce_offset = shuffle_offset + timeline.shuffle_s;
    trace_sim_phase(tracer, pid, "map", timeline.map_phase,
                    config.map_slots_per_node, 0, map_offset);
    if (timeline.shuffle_s > 0.0) {
      tracer.name_sim_track(pid, shuffle_tid, "shuffle");
      tracer.sim_task(pid, shuffle_tid, "shuffle", 0.0, timeline.shuffle_s,
                      {{"phase", "shuffle"},
                       {"bytes", obs::trace_double(shuffle_bytes)}},
                      shuffle_offset);
    }
    // Per-fetch shuffle events, one track per reducer, on the map-phase
    // clock (fetches overlap the map phase).  Offline reconstruction
    // (jobs_from_trace) skips phase=fetch events; the aggregate shuffle
    // event above remains the doctor's source of truth.
    for (const FetchPlacement& fetch : timeline.fetches) {
      const std::uint32_t tid =
          shuffle_tid + 1 + static_cast<std::uint32_t>(fetch.reducer);
      tracer.name_sim_track(pid, tid,
                            "shuffle fetch r" + std::to_string(fetch.reducer));
      tracer.sim_task(pid, tid,
                      "fetch m" + std::to_string(fetch.map_task) + " r" +
                          std::to_string(fetch.reducer),
                      fetch.start_s, fetch.end_s,
                      {{"phase", "fetch"},
                       {"map", std::to_string(fetch.map_task)},
                       {"reducer", std::to_string(fetch.reducer)},
                       {"bytes", obs::trace_double(fetch.bytes)}},
                      map_offset);
    }
    trace_sim_phase(tracer, pid, "reduce", timeline.reduce_phase,
                    config.reduce_slots_per_node, reduce_tid_base,
                    reduce_offset);
  }

  static const obs::Logger logger("mr.sim");
  logger.debug("job simulated",
               {{"job", job_name},
                {"maps", map_tasks.size()},
                {"reduces", reduce_tasks.size()},
                {"sim_total_s", timeline.total_s},
                {"summary", timeline.summary()}});
  return timeline;
}

obs::report::JobInput report_input(const JobTimeline& timeline,
                                   const ClusterConfig& config,
                                   std::string job_name, double shuffle_bytes) {
  obs::report::JobInput input;
  input.name = std::move(job_name);
  input.nodes = config.nodes;
  input.map_slots_per_node = config.map_slots_per_node;
  input.reduce_slots_per_node = config.reduce_slots_per_node;
  input.job_startup_s = config.job_startup_s;
  input.shuffle_s = timeline.shuffle_s;
  input.shuffle_bytes = shuffle_bytes;
  const auto convert = [](const PhaseTimeline& phase) {
    std::vector<obs::report::TaskSample> tasks;
    tasks.reserve(phase.tasks.size());
    for (std::size_t i = 0; i < phase.tasks.size(); ++i) {
      const TaskPlacement& task = phase.tasks[i];
      tasks.push_back({i, task.node, task.slot, task.start_s, task.end_s,
                       task.data_local});
    }
    return tasks;
  };
  input.map_tasks = convert(timeline.map_phase);
  input.reduce_tasks = convert(timeline.reduce_phase);
  return input;
}

std::string JobTimeline::summary() const {
  return "map=" + common::format_duration(map_phase.makespan_s) +
         " shuffle=" + common::format_duration(shuffle_s) +
         " reduce=" + common::format_duration(reduce_phase.makespan_s) +
         " total=" + common::format_duration(total_s);
}

}  // namespace mrmc::mr

// The paper's User Defined Functions (Algorithm 3).  Each UDF maps one
// input tuple to zero or more output tuples (Pig's FOREACH ... GENERATE
// FLATTEN semantics).
//
//   StringGenerator        (seq:chararray, id) -> (codes:list, id)
//   TranslateToKmer        (codes:list, id)    -> (kmers:list, id)
//   CalculateMinwiseHash   (kmers:list, id)    -> (minwise:list, id)
//   CalculatePairwiseSimilarity  group bag     -> (row:long, sims:list, id...)
//   AgglomerativeHierarchicalClustering  bag   -> (id, label:long) per read
//   GreedyClustering                     bag   -> (id, label:long) per read
#pragma once

#include <cstdint>
#include <memory>

#include "core/candidates.hpp"
#include "core/hierarchical.hpp"
#include "core/minhash.hpp"
#include "pig/tuple.hpp"

namespace mrmc::pig {

class Udf {
 public:
  virtual ~Udf() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// FLATTEN semantics: each input tuple may yield several output tuples.
  virtual Bag exec(const Tuple& input) const = 0;
};

/// DNA characters -> integer codes (A=0 C=1 G=2 T=3, ambiguous = -1).
class StringGenerator final : public Udf {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "StringGenerator"; }
  Bag exec(const Tuple& input) const override;
};

/// Integer codes -> packed k-mer feature set (sorted unique).
class TranslateToKmer final : public Udf {
 public:
  explicit TranslateToKmer(int k);
  [[nodiscard]] const char* name() const noexcept override { return "TranslateToKmer"; }
  Bag exec(const Tuple& input) const override;

 private:
  int k_;
};

/// k-mer set -> minwise sketch via the universal hash family (Equation 5) or
/// the C-MinHash affine-composition family (`scheme`).
class CalculateMinwiseHash final : public Udf {
 public:
  CalculateMinwiseHash(std::size_t num_hashes, int kmer, std::uint64_t seed,
                       core::SketchScheme scheme = core::SketchScheme::kUniversal);
  [[nodiscard]] const char* name() const noexcept override {
    return "CalculateMinwiseHash";
  }
  Bag exec(const Tuple& input) const override;

 private:
  std::shared_ptr<core::MinHasher> hasher_;
};

/// Grouped sketches -> one similarity-matrix row per read (row-partitioned,
/// j > row only).  With the default exact backend every pair is scored;
/// under core::candidates' LSH backend only candidate pairs are scored (the
/// banding is resolved from `theta` via the S-curve) and non-candidate
/// cells stay 0 — the row shape is unchanged, so downstream UDFs work with
/// either backend.
class CalculatePairwiseSimilarity final : public Udf {
 public:
  explicit CalculatePairwiseSimilarity(core::SketchEstimator estimator,
                                       core::candidates::Params candidates = {},
                                       double theta = 0.9);
  [[nodiscard]] const char* name() const noexcept override {
    return "CalculatePairwiseSimilarity";
  }
  Bag exec(const Tuple& input) const override;

 private:
  core::SketchEstimator estimator_;
  core::candidates::Params candidates_;
  double theta_;
};

/// Grouped similarity rows -> (id, label) per read.
class AgglomerativeHierarchicalClustering final : public Udf {
 public:
  AgglomerativeHierarchicalClustering(core::Linkage linkage, double cutoff);
  [[nodiscard]] const char* name() const noexcept override {
    return "AgglomerativeHierarchicalClustering";
  }
  Bag exec(const Tuple& input) const override;

 private:
  core::Linkage linkage_;
  double cutoff_;
};

/// Grouped sketches -> (id, label) per read via Algorithm 1.
class GreedyClustering final : public Udf {
 public:
  GreedyClustering(double cutoff, core::SketchEstimator estimator);
  [[nodiscard]] const char* name() const noexcept override { return "GreedyClustering"; }
  Bag exec(const Tuple& input) const override;

 private:
  double cutoff_;
  core::SketchEstimator estimator_;
};

}  // namespace mrmc::pig

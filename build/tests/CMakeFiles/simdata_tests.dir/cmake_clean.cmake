file(REMOVE_RECURSE
  "CMakeFiles/simdata_tests.dir/simdata/datasets_test.cpp.o"
  "CMakeFiles/simdata_tests.dir/simdata/datasets_test.cpp.o.d"
  "CMakeFiles/simdata_tests.dir/simdata/fastq_sim_test.cpp.o"
  "CMakeFiles/simdata_tests.dir/simdata/fastq_sim_test.cpp.o.d"
  "CMakeFiles/simdata_tests.dir/simdata/genome_test.cpp.o"
  "CMakeFiles/simdata_tests.dir/simdata/genome_test.cpp.o.d"
  "CMakeFiles/simdata_tests.dir/simdata/marker16s_test.cpp.o"
  "CMakeFiles/simdata_tests.dir/simdata/marker16s_test.cpp.o.d"
  "CMakeFiles/simdata_tests.dir/simdata/reads_test.cpp.o"
  "CMakeFiles/simdata_tests.dir/simdata/reads_test.cpp.o.d"
  "simdata_tests"
  "simdata_tests.pdb"
  "simdata_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdata_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace mrmc::eval {

std::vector<std::size_t> cluster_sizes(std::span<const int> labels) {
  int max_label = -1;
  for (const int label : labels) {
    MRMC_REQUIRE(label >= 0, "labels must be non-negative");
    max_label = std::max(max_label, label);
  }
  std::vector<std::size_t> sizes(static_cast<std::size_t>(max_label + 1), 0);
  for (const int label : labels) ++sizes[label];
  return sizes;
}

double weighted_cluster_accuracy(std::span<const int> labels,
                                 std::span<const int> truth,
                                 const AccuracyOptions& options) {
  MRMC_REQUIRE(labels.size() == truth.size(), "one truth class per label");
  if (labels.empty()) return 0.0;

  // Per-cluster class histograms.
  std::map<int, std::map<int, std::size_t>> histograms;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++histograms[labels[i]][truth[i]];
  }

  double weighted_sum = 0.0;
  std::size_t total_weight = 0;
  for (const auto& [cluster, histogram] : histograms) {
    std::size_t size = 0;
    std::size_t majority = 0;
    for (const auto& [cls, count] : histogram) {
      size += count;
      majority = std::max(majority, count);
    }
    if (size < options.min_cluster_size) continue;
    // Weighting by size: sum(majority) / sum(size) == size-weighted mean of
    // per-cluster accuracy majority/size.
    weighted_sum += static_cast<double>(majority);
    total_weight += size;
  }
  return total_weight == 0 ? 0.0
                           : weighted_sum / static_cast<double>(total_weight);
}

double weighted_similarity(std::span<const int> labels,
                           std::span<const bio::FastaRecord> reads,
                           const SimilarityOptions& options) {
  MRMC_REQUIRE(labels.size() == reads.size(), "one read per label");
  if (labels.empty()) return 0.0;

  // Member lists per cluster.
  std::map<int, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    members[labels[i]].push_back(i);
  }

  struct ClusterTask {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    std::size_t size = 0;
  };
  std::vector<ClusterTask> tasks;
  for (const auto& [cluster, indices] : members) {
    if (indices.size() < options.min_cluster_size || indices.size() < 2) continue;
    ClusterTask task;
    task.size = indices.size();
    const std::size_t all_pairs = indices.size() * (indices.size() - 1) / 2;
    if (all_pairs <= options.max_pairs_per_cluster) {
      for (std::size_t a = 0; a < indices.size(); ++a) {
        for (std::size_t b = a + 1; b < indices.size(); ++b) {
          task.pairs.emplace_back(indices[a], indices[b]);
        }
      }
    } else {
      common::Xoshiro256 rng(
          common::mix64(options.seed ^ static_cast<std::uint64_t>(cluster)));
      for (std::size_t draw = 0; draw < options.max_pairs_per_cluster; ++draw) {
        const std::size_t a = rng.bounded(indices.size());
        std::size_t b = rng.bounded(indices.size() - 1);
        if (b >= a) ++b;
        task.pairs.emplace_back(indices[std::min(a, b)], indices[std::max(a, b)]);
      }
    }
    tasks.push_back(std::move(task));
  }
  if (tasks.empty()) return 0.0;

  std::vector<double> cluster_sim(tasks.size(), 0.0);
  common::ThreadPool pool(options.threads);
  pool.parallel_for(tasks.size(), [&](std::size_t t) {
    const ClusterTask& task = tasks[t];
    double sum = 0.0;
    for (const auto& [i, j] : task.pairs) {
      sum += bio::global_identity(reads[i].seq, reads[j].seq, options.align);
    }
    cluster_sim[t] = sum / static_cast<double>(task.pairs.size());
  });

  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    weighted_sum += cluster_sim[t] * static_cast<double>(tasks[t].size);
    total_weight += static_cast<double>(tasks[t].size);
  }
  return weighted_sum / total_weight;
}

std::size_t clusters_at_least(std::span<const int> labels, std::size_t min_size) {
  const auto sizes = cluster_sizes(labels);
  std::size_t count = 0;
  for (const std::size_t size : sizes) {
    if (size >= min_size && size > 0) ++count;
  }
  return count;
}

double shannon_index(std::span<const int> labels) {
  if (labels.empty()) return 0.0;
  const auto sizes = cluster_sizes(labels);
  const auto total = static_cast<double>(labels.size());
  double h = 0.0;
  for (const std::size_t size : sizes) {
    if (size == 0) continue;
    const double p = static_cast<double>(size) / total;
    h -= p * std::log(p);
  }
  return h;
}

double chao1_richness(std::span<const int> labels) {
  if (labels.empty()) return 0.0;
  const auto sizes = cluster_sizes(labels);
  double observed = 0, singletons = 0, doubletons = 0;
  for (const std::size_t size : sizes) {
    if (size == 0) continue;
    ++observed;
    if (size == 1) ++singletons;
    if (size == 2) ++doubletons;
  }
  if (doubletons > 0) {
    return observed + singletons * singletons / (2.0 * doubletons);
  }
  // Bias-corrected form when no doubletons exist.
  return observed + singletons * (singletons - 1.0) / 2.0;
}

}  // namespace mrmc::eval

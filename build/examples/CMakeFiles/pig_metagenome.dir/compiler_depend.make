# Empty compiler generated dependencies file for pig_metagenome.
# This may be replaced when dependencies are built.

// Affine-gap global alignment (Gotoh 1982).  Real aligners penalize gap
// openings more than extensions; DOTUR/Mothur distance pipelines and the
// W.Sim metric in follow-up work use affine scoring.  Provides score and
// identity like bio/alignment.hpp's linear-gap NW, via three-state DP.
#pragma once

#include <string_view>

#include "bio/alignment.hpp"

namespace mrmc::bio {

struct AffineParams {
  int match = 1;
  int mismatch = -1;
  int gap_open = -4;    ///< charged once per gap (in addition to extend)
  int gap_extend = -1;  ///< charged per gap column
};

/// Optimal affine-gap global alignment score (Gotoh three-state DP),
/// O(min(|a|,|b|)) memory.
long gotoh_score(std::string_view a, std::string_view b,
                 const AffineParams& params = {});

/// Affine-gap global alignment identity (matched columns / all columns).
AlignResult gotoh_align(std::string_view a, std::string_view b,
                        const AffineParams& params = {});

}  // namespace mrmc::bio

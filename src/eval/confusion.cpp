#include "eval/confusion.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace mrmc::eval {

ConfusionReport confusion_report(std::span<const int> labels,
                                 std::span<const int> truth) {
  MRMC_REQUIRE(labels.size() == truth.size(), "labelings must align");
  ConfusionReport report;
  if (labels.empty()) return report;

  int max_class = 0;
  for (const int cls : truth) {
    MRMC_REQUIRE(cls >= 0, "classes must be non-negative");
    max_class = std::max(max_class, cls);
  }
  report.classes = static_cast<std::size_t>(max_class) + 1;

  std::map<int, ConfusionRow> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    MRMC_REQUIRE(labels[i] >= 0, "labels must be non-negative");
    auto& row = rows[labels[i]];
    if (row.class_counts.empty()) {
      row.cluster = labels[i];
      row.class_counts.resize(report.classes, 0);
    }
    ++row.class_counts[truth[i]];
    ++row.size;
  }

  for (auto& [cluster, row] : rows) {
    const auto majority =
        std::max_element(row.class_counts.begin(), row.class_counts.end());
    row.majority_class = static_cast<int>(majority - row.class_counts.begin());
    row.purity = static_cast<double>(*majority) / static_cast<double>(row.size);
    report.rows.push_back(row);
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const ConfusionRow& a, const ConfusionRow& b) {
              return a.size > b.size ||
                     (a.size == b.size && a.cluster < b.cluster);
            });

  // Per-class recall: members of class c that sit in clusters designating c.
  std::vector<std::size_t> class_total(report.classes, 0);
  std::vector<std::size_t> class_recovered(report.classes, 0);
  for (const int cls : truth) ++class_total[cls];
  for (const auto& row : report.rows) {
    class_recovered[row.majority_class] +=
        row.class_counts[row.majority_class];
  }
  report.class_recall.resize(report.classes, 0.0);
  for (std::size_t c = 0; c < report.classes; ++c) {
    if (class_total[c] > 0) {
      report.class_recall[c] = static_cast<double>(class_recovered[c]) /
                               static_cast<double>(class_total[c]);
    }
  }
  return report;
}

std::string ConfusionReport::to_text(
    std::span<const std::string> class_names) const {
  auto name_of = [&](int cls) {
    return static_cast<std::size_t>(cls) < class_names.size()
               ? class_names[cls]
               : "class" + std::to_string(cls);
  };
  std::ostringstream out;
  out << "cluster\tsize\tpurity\tmajority\tcounts\n";
  for (const auto& row : rows) {
    out << row.cluster << '\t' << row.size << '\t' << row.purity << '\t'
        << name_of(row.majority_class) << '\t';
    for (std::size_t c = 0; c < row.class_counts.size(); ++c) {
      if (c) out << ',';
      out << row.class_counts[c];
    }
    out << '\n';
  }
  out << "recall:";
  for (std::size_t c = 0; c < class_recall.size(); ++c) {
    out << ' ' << name_of(static_cast<int>(c)) << '=' << class_recall[c];
  }
  out << '\n';
  return out.str();
}

}  // namespace mrmc::eval

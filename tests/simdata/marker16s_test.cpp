#include "simdata/marker16s.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bio/alignment.hpp"
#include "common/error.hpp"

namespace mrmc::simdata {
namespace {

TEST(Generate16sGenes, CountAndLength) {
  const auto genes = generate_16s_genes(5, {}, 1);
  ASSERT_EQ(genes.size(), 5u);
  for (const auto& gene : genes) {
    // Indels in the variable blocks perturb the length slightly.
    EXPECT_NEAR(static_cast<double>(gene.seq.size()), 1500.0, 30.0);
  }
  EXPECT_EQ(genes[0].name, "OTU_0");
}

TEST(Generate16sGenes, ConservedBlocksStayConserved) {
  Marker16sParams params;
  const auto genes = generate_16s_genes(2, params, 2);
  // Block 0 (conserved, bases 0-74) should be nearly identical across taxa;
  // block 1 (variable, 75-149) should diverge strongly.
  const std::string conserved_a = genes[0].seq.substr(0, 75);
  const std::string conserved_b = genes[1].seq.substr(0, 75);
  const std::string variable_a = genes[0].seq.substr(75, 75);
  const std::string variable_b = genes[1].seq.substr(75, 75);
  const double conserved_identity = bio::global_identity(conserved_a, conserved_b);
  const double variable_identity = bio::global_identity(variable_a, variable_b);
  EXPECT_GT(conserved_identity, 0.9);
  EXPECT_LT(variable_identity, conserved_identity - 0.1);
}

TEST(Generate16sGenes, DistinctTaxaDistinctGenes) {
  const auto genes = generate_16s_genes(3, {}, 3);
  EXPECT_NE(genes[0].seq, genes[1].seq);
  EXPECT_NE(genes[1].seq, genes[2].seq);
}

TEST(Generate16sGenes, DeterministicPerSeed) {
  EXPECT_EQ(generate_16s_genes(2, {}, 4)[1].seq,
            generate_16s_genes(2, {}, 4)[1].seq);
  EXPECT_NE(generate_16s_genes(2, {}, 4)[1].seq,
            generate_16s_genes(2, {}, 5)[1].seq);
}

// ----------------------------------------------------------- amplicon_reads

TEST(AmpliconReads, CountLabelsSpecies) {
  const auto genes = generate_16s_genes(4, {}, 6);
  const LabeledReads reads =
      amplicon_reads(genes, {1, 1, 1, 1}, 80, {}, 7);
  EXPECT_EQ(reads.size(), 80u);
  EXPECT_EQ(reads.species.size(), 4u);
  for (const int label : reads.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(AmpliconReads, AbundanceSkewObserved) {
  const auto genes = generate_16s_genes(2, {}, 8);
  const LabeledReads reads = amplicon_reads(genes, {9.0, 1.0}, 2000, {}, 9);
  const long dominant = std::count(reads.labels.begin(), reads.labels.end(), 0);
  EXPECT_NEAR(static_cast<double>(dominant) / 2000.0, 0.9, 0.03);
}

TEST(AmpliconReads, PrimerAnchoredReadsComeFromWindow) {
  const auto genes = generate_16s_genes(1, {}, 10);
  AmpliconParams params;
  params.errors = {};  // exact substring check
  const LabeledReads reads = amplicon_reads(genes, {1.0}, 30, params, 11);
  for (const auto& read : reads.reads) {
    const auto pos = genes[0].seq.find(read.seq);
    ASSERT_NE(pos, std::string::npos);
    EXPECT_GE(pos, params.window_start);
    EXPECT_LE(pos, params.window_start + params.start_jitter);
  }
}

TEST(AmpliconReads, UnanchoredReadsSpreadOverWindow) {
  const auto genes = generate_16s_genes(1, {}, 12);
  AmpliconParams params;
  params.errors = {};
  params.primer_anchored = false;
  params.read_length = 30;
  params.length_jitter = 0.0;
  params.window_span = 120;
  const LabeledReads reads = amplicon_reads(genes, {1.0}, 100, params, 13);
  std::size_t min_pos = 1u << 20, max_pos = 0;
  for (const auto& read : reads.reads) {
    const auto pos = genes[0].seq.find(read.seq);
    ASSERT_NE(pos, std::string::npos);
    min_pos = std::min(min_pos, pos);
    max_pos = std::max(max_pos, pos);
  }
  EXPECT_GT(max_pos - min_pos, 40u);  // spread, not anchored
}

TEST(AmpliconReads, SameOtuReadsOverlapStrongly) {
  const auto genes = generate_16s_genes(2, {}, 14);
  AmpliconParams params;
  params.errors = ErrorModel::uniform(0.005);
  const LabeledReads reads = amplicon_reads(genes, {1.0, 1.0}, 60, params, 15);
  double intra = 0, inter = 0;
  int ni = 0, nx = 0;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    for (std::size_t j = i + 1; j < reads.size(); ++j) {
      const double identity =
          bio::global_identity(reads.reads[i].seq, reads.reads[j].seq);
      if (reads.labels[i] == reads.labels[j]) {
        intra += identity;
        ++ni;
      } else {
        inter += identity;
        ++nx;
      }
    }
  }
  ASSERT_GT(ni, 0);
  ASSERT_GT(nx, 0);
  EXPECT_GT(intra / ni, inter / nx + 0.1);
}

TEST(AmpliconReads, RejectsBadArguments) {
  const auto genes = generate_16s_genes(2, {}, 16);
  EXPECT_THROW(amplicon_reads({}, {}, 10, {}, 1), common::InvalidArgument);
  EXPECT_THROW(amplicon_reads(genes, {1.0}, 10, {}, 1), common::InvalidArgument);
  EXPECT_THROW(amplicon_reads(genes, {0.0, 0.0}, 10, {}, 1),
               common::InvalidArgument);
  EXPECT_THROW(amplicon_reads(genes, {1.0, -1.0}, 10, {}, 1),
               common::InvalidArgument);
}

// ---------------------------------------------------- lognormal_abundances

TEST(LognormalAbundances, PositiveAndSkewed) {
  const auto abundances = lognormal_abundances(500, 1.5, 17);
  ASSERT_EQ(abundances.size(), 500u);
  double max_val = 0, total = 0;
  for (const double a : abundances) {
    EXPECT_GT(a, 0.0);
    max_val = std::max(max_val, a);
    total += a;
  }
  // Rare-biosphere shape: the most abundant OTU dominates the mean.
  EXPECT_GT(max_val, 5.0 * total / 500.0);
}

TEST(LognormalAbundances, ZeroSigmaIsUniform) {
  const auto abundances = lognormal_abundances(10, 0.0, 18);
  for (const double a : abundances) EXPECT_DOUBLE_EQ(a, 1.0);
}

TEST(LognormalAbundances, DeterministicPerSeed) {
  EXPECT_EQ(lognormal_abundances(10, 1.0, 19), lognormal_abundances(10, 1.0, 19));
  EXPECT_NE(lognormal_abundances(10, 1.0, 19), lognormal_abundances(10, 1.0, 20));
}

}  // namespace
}  // namespace mrmc::simdata

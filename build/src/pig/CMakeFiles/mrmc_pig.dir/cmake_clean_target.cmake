file(REMOVE_RECURSE
  "libmrmc_pig.a"
)

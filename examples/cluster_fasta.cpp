// cluster_fasta — a small command-line clustering tool over the public API:
// reads any FASTA file, clusters it with MrMC-MinH, and writes a TSV of
// (read id, cluster label) to stdout.  Demonstrates using the library on
// your own data rather than the synthetic benchmarks.
//
//   ./cluster_fasta <reads.fa> [--mode=hier|greedy] [--kmer=15] [--hashes=50]
//       [--theta=0.35] [--linkage=single|average|complete] [--nodes=8]
//       [--local] [--seed=1] [--summary]
//
// Try it on a generated sample:
//   ./pig_metagenome   # or write your own FASTA
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/mrmc.hpp"
#include "eval/metrics.hpp"

namespace {

using namespace mrmc;

int usage() {
  std::cerr << "usage: cluster_fasta <reads.fa> [--mode=hier|greedy] "
               "[--kmer=K] [--hashes=N] [--theta=T] "
               "[--linkage=single|average|complete] [--nodes=N] [--local] "
               "[--seed=S] [--summary]\n";
  return 2;
}

std::string opt_value(const std::string& arg) {
  const auto eq = arg.find('=');
  return eq == std::string::npos ? "" : arg.substr(eq + 1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]).rfind("--", 0) == 0) return usage();
  const std::string path = argv[1];

  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 1};
  params.theta = 0.35;
  core::ExecutionOptions exec;
  exec.cluster.nodes = 8;
  bool summary = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string value = opt_value(arg);
    if (arg.rfind("--mode=", 0) == 0) {
      if (value == "greedy") {
        params.mode = core::Mode::kGreedy;
      } else if (value == "hier") {
        params.mode = core::Mode::kHierarchical;
      } else {
        return usage();
      }
    } else if (arg.rfind("--kmer=", 0) == 0) {
      params.minhash.kmer = std::stoi(value);
    } else if (arg.rfind("--hashes=", 0) == 0) {
      params.minhash.num_hashes = std::stoul(value);
    } else if (arg.rfind("--theta=", 0) == 0) {
      params.theta = std::stod(value);
    } else if (arg.rfind("--linkage=", 0) == 0) {
      if (value == "single") {
        params.linkage = core::Linkage::kSingle;
      } else if (value == "average") {
        params.linkage = core::Linkage::kAverage;
      } else if (value == "complete") {
        params.linkage = core::Linkage::kComplete;
      } else {
        return usage();
      }
    } else if (arg.rfind("--nodes=", 0) == 0) {
      exec.cluster.nodes = std::stoul(value);
    } else if (arg == "--local") {
      exec.distributed = false;
    } else if (arg.rfind("--seed=", 0) == 0) {
      params.minhash.seed = std::stoull(value);
    } else if (arg == "--summary") {
      summary = true;
    } else {
      return usage();
    }
  }

  try {
    const auto reads = bio::read_fasta_file(path);
    if (reads.empty()) {
      std::cerr << "cluster_fasta: no records in " << path << "\n";
      return 1;
    }
    const auto result = core::run_pipeline(reads, params, exec);

    for (std::size_t i = 0; i < reads.size(); ++i) {
      std::cout << reads[i].id << '\t' << result.labels[i] << '\n';
    }
    if (summary) {
      std::cerr << reads.size() << " reads -> " << result.num_clusters
                << " clusters (" << core::mode_name(params.mode)
                << ", theta=" << params.theta << ", k=" << params.minhash.kmer
                << ", n=" << params.minhash.num_hashes << ") in "
                << common::format_duration(result.wall_s)
                << "; Shannon H' = "
                << common::fmt_f(eval::shannon_index(result.labels), 3) << "\n";
    }
  } catch (const common::Error& error) {
    std::cerr << "cluster_fasta: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

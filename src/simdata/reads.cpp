#include "simdata/reads.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>

#include "bio/dna.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::simdata {

using common::Xoshiro256;

std::string apply_errors(const std::string& tmpl, const ErrorModel& errors,
                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string out;
  out.reserve(tmpl.size() + 8);
  for (const char c : tmpl) {
    const double roll = rng.uniform();
    if (roll < errors.del_rate) {
      continue;  // base dropped
    }
    if (roll < errors.del_rate + errors.ins_rate) {
      out.push_back(bio::decode_base(static_cast<int>(rng.bounded(4))));
      out.push_back(c);
      continue;
    }
    if (roll < errors.del_rate + errors.ins_rate + errors.subst_rate) {
      int code = bio::encode_base(c);
      if (code < 0) code = 0;
      const int shifted = (code + 1 + static_cast<int>(rng.bounded(3))) % 4;
      out.push_back(bio::decode_base(shifted));
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::vector<bio::FastaRecord> shotgun_reads(const Genome& genome, std::size_t count,
                                            const ShotgunParams& params,
                                            const std::string& prefix,
                                            std::uint64_t seed) {
  MRMC_REQUIRE(params.read_length >= 1, "read_length must be positive");
  MRMC_REQUIRE(!genome.seq.empty(), "cannot sample from an empty genome");
  Xoshiro256 rng(seed);
  std::vector<bio::FastaRecord> reads;
  reads.reserve(count);

  // Read ids must survive FASTA round-trips, where the id is the first
  // whitespace-delimited token — sanitize the prefix.
  std::string safe_prefix = prefix;
  for (char& c : safe_prefix) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }

  const auto mean_len = static_cast<double>(params.read_length);
  for (std::size_t i = 0; i < count; ++i) {
    const double jitter = rng.uniform(-params.length_jitter, params.length_jitter);
    auto len = static_cast<std::size_t>(
        std::max(1.0, mean_len * (1.0 + jitter)));
    len = std::min(len, genome.seq.size());
    const std::size_t pos = rng.bounded(genome.seq.size() - len + 1);
    std::string tmpl = genome.seq.substr(pos, len);
    if (params.both_strands && rng.chance(0.5)) {
      tmpl = bio::reverse_complement(tmpl);
    }
    bio::FastaRecord rec;
    rec.id = safe_prefix + "_r" + std::to_string(i);
    rec.header = rec.id + " source=" + genome.name + " pos=" + std::to_string(pos);
    rec.seq = apply_errors(tmpl, params.errors, rng());
    if (rec.seq.empty()) rec.seq = tmpl;  // degenerate deletion-only outcome
    reads.push_back(std::move(rec));
  }
  return reads;
}

LabeledReads mix_shotgun(const std::vector<Genome>& genomes,
                         const std::vector<int>& ratios, std::size_t total,
                         const ShotgunParams& params, std::uint64_t seed) {
  MRMC_REQUIRE(!genomes.empty(), "need at least one genome");
  MRMC_REQUIRE(genomes.size() == ratios.size(), "one ratio per genome");
  const long ratio_sum = std::accumulate(ratios.begin(), ratios.end(), 0L);
  MRMC_REQUIRE(ratio_sum > 0, "ratios must sum to a positive value");

  LabeledReads out;
  out.reads.reserve(total);
  out.labels.reserve(total);
  for (const auto& genome : genomes) out.species.push_back(genome.name);

  // Deterministic largest-remainder apportionment of `total` over ratios.
  std::vector<std::size_t> counts(genomes.size());
  std::size_t assigned = 0;
  for (std::size_t g = 0; g < genomes.size(); ++g) {
    counts[g] = total * static_cast<std::size_t>(ratios[g]) /
                static_cast<std::size_t>(ratio_sum);
    assigned += counts[g];
  }
  for (std::size_t g = 0; assigned < total; g = (g + 1) % genomes.size()) {
    ++counts[g];
    ++assigned;
  }

  for (std::size_t g = 0; g < genomes.size(); ++g) {
    auto reads = shotgun_reads(genomes[g], counts[g], params,
                               genomes[g].name,
                               common::mix64(seed ^ (g * 0x9e3779b9ULL + 1)));
    for (auto& rec : reads) {
      rec.header += " label=" + std::to_string(g);
      out.reads.push_back(std::move(rec));
      out.labels.push_back(static_cast<int>(g));
    }
  }

  // Shuffle reads and labels together so input order carries no signal.
  Xoshiro256 rng(common::mix64(seed ^ 0xabcdef1234567890ULL));
  for (std::size_t i = out.reads.size(); i > 1; --i) {
    const std::size_t j = rng.bounded(i);
    std::swap(out.reads[i - 1], out.reads[j]);
    std::swap(out.labels[i - 1], out.labels[j]);
  }
  return out;
}

}  // namespace mrmc::simdata

# Empty dependencies file for pig_tests.
# This may be replaced when dependencies are built.

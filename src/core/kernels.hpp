// core::kernels — the batched compute substrate under every clustering mode.
//
// The paper's whole compute budget is Equation 4/5 sketching plus all-pairs
// sketch comparison (Sections III-A/B).  This layer provides those two hot
// loops as batched kernels with a runtime-dispatched AVX2 path and a
// portable scalar fallback that is **bit-identical** (both paths compute the
// exact Carter-Wegman residue and exact match counts, so greedy /
// hierarchical / pipeline outputs and the simulated-clock cost model do not
// depend on the instruction set):
//
//  * min_sketch        — batched minwise hashing: SoA hash parameters,
//                        hash-outer / feature-inner loops, 4-way unrolled
//                        Mersenne-61 reduction (AVX2: 4 hash lanes per
//                        feature broadcast).
//  * count_equal       — positions with equal 64-bit components (AVX2:
//                        cmpeq + movemask popcount), the component-match
//                        estimator's inner loop.
//  * component_match_matrix — cache-blocked all-pairs similarity fill over a
//                        flat SketchMatrix (no pointer chase per cell).
//  * argmin            — first-minimum row scan for the nearest-neighbour
//                        chain in agglomerate().
//
// Dispatch is race-free: the backend is chosen once via a function-local
// static (C++11 magic statics).  `MRMC_FORCE_SCALAR=1` is the escape hatch
// that pins the scalar path regardless of CPU support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mrmc::common {
class ThreadPool;
}  // namespace mrmc::common

namespace mrmc::core::kernels {

/// Instruction-set backend for the kernels.  Every backend produces
/// bit-identical results; only throughput differs.
enum class Backend {
  kScalar,  ///< portable C++, 4-way unrolled
  kAvx2,    ///< AVX2 (x86-64), 4 × 64-bit lanes
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// True when `backend` can run on this machine (compiled in + CPU support).
[[nodiscard]] bool backend_available(Backend backend) noexcept;

/// The dispatched backend: best available unless MRMC_FORCE_SCALAR is set
/// (or a test override is active).  Decided once, thread-safe.
[[nodiscard]] Backend active_backend() noexcept;

/// Test hook: force every `active_backend()` call to return `backend` while
/// alive.  Install before spawning worker threads; not for production use.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(Backend backend);
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;
};

/// p = 2^61 - 1, the Mersenne prime of the Carter-Wegman family.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Sentinel minimum for an empty feature set (no x to minimize over).
inline constexpr std::uint64_t kEmptyFeatureMin = ~std::uint64_t{0};

namespace detail {

/// (value) mod (2^61 - 1) for a full 128-bit product, exploiting the
/// Mersenne structure: (hi·2^61 + lo) ≡ hi + lo (mod p).
constexpr std::uint64_t mod_mersenne61(__uint128_t value) noexcept {
  value = (value & kMersenne61) + (value >> 61);  // < 2^64 + 2^61
  value = (value & kMersenne61) + (value >> 61);  // < 2^61 + 8
  auto reduced = static_cast<std::uint64_t>(value);
  if (reduced >= kMersenne61) reduced -= kMersenne61;
  return reduced;
}

/// One Carter-Wegman evaluation h(x) = (a·x + b) mod p.
constexpr std::uint64_t cw_hash(std::uint64_t a, std::uint64_t b,
                                std::uint64_t x) noexcept {
  return mod_mersenne61(static_cast<__uint128_t>(a) * x + b);
}

}  // namespace detail

/// Batched minwise hashing (Equations 4/5): for every hash i,
///   out[i] = min over features x of ((mul[i]·x + add[i]) mod p) [% modulus]
/// with `modulus == 0` meaning "no outer mod".  `mul`, `add`, `out` must
/// have equal length (the SoA hash-parameter layout).  An empty feature set
/// fills `out` with kEmptyFeatureMin.
void min_sketch(std::span<const std::uint64_t> mul,
                std::span<const std::uint64_t> add, std::uint64_t modulus,
                std::span<const std::uint64_t> features,
                std::span<std::uint64_t> out,
                Backend backend = active_backend());

/// Number of positions i with a[i] == b[i] (spans must have equal length).
[[nodiscard]] std::size_t count_equal(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      Backend backend = active_backend()) noexcept;

/// First index of the minimum of `row` (ties -> lowest index), or
/// row.size() when the row is empty.  +inf entries mark dead slots; the scan
/// assumes no NaNs.
[[nodiscard]] std::size_t argmin(std::span<const double> row,
                                 Backend backend = active_backend()) noexcept;

/// Number of distinct values in `values`.  `scratch` is a caller-owned
/// buffer reused across calls, so the hot path performs no allocation once
/// the buffer has warmed up.
[[nodiscard]] std::size_t count_distinct(std::span<const std::uint64_t> values,
                                         std::vector<std::uint64_t>& scratch);

/// Flat row-major sketch store: rows() sketches of cols() minima each in one
/// contiguous uint64_t block — the similarity kernels' substrate (replaces
/// vector<vector<uint64_t>> and its per-cell pointer chase).
class SketchMatrix {
 public:
  SketchMatrix() = default;
  SketchMatrix(std::size_t rows, std::size_t cols, std::uint64_t fill = 0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  [[nodiscard]] std::span<std::uint64_t> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] const std::uint64_t* row_ptr(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] const std::uint64_t* data() const noexcept { return data_.data(); }

  /// Gather a vector-of-sketches into a flat matrix.  All sketches must have
  /// the same length (MinHasher guarantees this).
  static SketchMatrix from_sketches(
      std::span<const std::vector<std::uint64_t>> sketches);

  /// Inverse of from_sketches (for APIs that still speak vector<Sketch>).
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> to_sketches() const;

  friend bool operator==(const SketchMatrix&, const SketchMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Cache-blocked all-pairs component-match fill: writes the full symmetric
/// n×n matrix (diagonal 1.0f) into `out` with `stride` floats per row.
/// out[i*stride+j] = float(count_equal(row i, row j) / cols); 0.0f off the
/// diagonal when cols == 0 (matching component_match_similarity on empty
/// sketches).  Rows are processed in blocks so each block stays L1-resident
/// while the partner rows stream.  When `pool` is non-null, blocks run in
/// parallel; the result is identical at any thread count.
void component_match_matrix(const SketchMatrix& sketches, float* out,
                            std::size_t stride,
                            Backend backend = active_backend(),
                            common::ThreadPool* pool = nullptr);

}  // namespace mrmc::core::kernels

#include "bio/dna.hpp"

#include <gtest/gtest.h>

namespace mrmc::bio {
namespace {

TEST(EncodeBase, CanonicalMapping) {
  EXPECT_EQ(encode_base('A'), 0);
  EXPECT_EQ(encode_base('C'), 1);
  EXPECT_EQ(encode_base('G'), 2);
  EXPECT_EQ(encode_base('T'), 3);
}

TEST(EncodeBase, CaseInsensitive) {
  EXPECT_EQ(encode_base('a'), 0);
  EXPECT_EQ(encode_base('c'), 1);
  EXPECT_EQ(encode_base('g'), 2);
  EXPECT_EQ(encode_base('t'), 3);
}

TEST(EncodeBase, AmbiguityCodesAreNegative) {
  for (const char c : {'N', 'n', 'R', 'Y', '-', '.', 'X', ' ', 'U'}) {
    EXPECT_LT(encode_base(c), 0) << c;
  }
}

TEST(DecodeBase, RoundTripsEncode) {
  for (const char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(decode_base(encode_base(c)), c);
  }
}

TEST(DecodeBase, OutOfRangeIsN) {
  EXPECT_EQ(decode_base(-1), 'N');
  EXPECT_EQ(decode_base(4), 'N');
}

TEST(Complement, PairsBases) {
  EXPECT_EQ(complement_base('A'), 'T');
  EXPECT_EQ(complement_base('T'), 'A');
  EXPECT_EQ(complement_base('C'), 'G');
  EXPECT_EQ(complement_base('G'), 'C');
  EXPECT_EQ(complement_base('N'), 'N');
}

TEST(ComplementCode, IsInvolution) {
  for (int code = 0; code < 4; ++code) {
    EXPECT_EQ(complement_code(complement_code(code)), code);
  }
}

TEST(IsValidDna, AcceptsAcgtOnly) {
  EXPECT_TRUE(is_valid_dna("ACGTacgt"));
  EXPECT_TRUE(is_valid_dna(""));
  EXPECT_FALSE(is_valid_dna("ACGTN"));
  EXPECT_FALSE(is_valid_dna("ACG T"));
}

TEST(ReverseComplement, KnownSequence) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AACC"), "GGTT");
  EXPECT_EQ(reverse_complement(""), "");
  EXPECT_EQ(reverse_complement("ANT"), "ANT");
}

TEST(ReverseComplement, IsInvolutionOnValidDna) {
  const std::string seq = "ACGGTTACGATCGATCG";
  EXPECT_EQ(reverse_complement(reverse_complement(seq)), seq);
}

TEST(GcContent, KnownValues) {
  EXPECT_DOUBLE_EQ(gc_content("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_content("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(gc_content("ACGT"), 0.5);
  EXPECT_DOUBLE_EQ(gc_content(""), 0.0);
}

TEST(GcContent, IgnoresAmbiguousBases) {
  EXPECT_DOUBLE_EQ(gc_content("GNNNC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_content("NNN"), 0.0);
}

TEST(Sanitize, UppercasesAndMasks) {
  EXPECT_EQ(sanitize("acgt"), "ACGT");
  EXPECT_EQ(sanitize("AC-GT"), "ACNGT");
  EXPECT_EQ(sanitize("ryswkm"), "NNNNNN");
}

}  // namespace
}  // namespace mrmc::bio

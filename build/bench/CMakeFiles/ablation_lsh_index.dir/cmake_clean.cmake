file(REMOVE_RECURSE
  "CMakeFiles/ablation_lsh_index.dir/ablation_lsh_index.cpp.o"
  "CMakeFiles/ablation_lsh_index.dir/ablation_lsh_index.cpp.o.d"
  "ablation_lsh_index"
  "ablation_lsh_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lsh_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

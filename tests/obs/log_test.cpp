#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mrmc::obs {
namespace {

/// Installs a CaptureSink on the global config for one test, then restores
/// the default sink and the quiet default level.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LogConfig::global().set_sink(&sink_);
    LogConfig::global().clear_rules();
    LogConfig::global().set_default_level(LogLevel::kInfo);
  }
  void TearDown() override {
    LogConfig::global().set_sink(nullptr);
    LogConfig::global().clear_rules();
    LogConfig::global().set_default_level(LogLevel::kWarn);
  }

  CaptureSink sink_;
};

TEST_F(LogTest, CapturesStructuredFields) {
  const Logger logger("mr.job");
  logger.info("job finished", {{"job", "sketch"}, {"maps", 12}, {"sim_s", 41.25}});

  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& record = records[0];
  EXPECT_EQ(record.level, LogLevel::kInfo);
  EXPECT_EQ(record.logger, "mr.job");
  EXPECT_EQ(record.message, "job finished");
  EXPECT_EQ(record.field("job"), "sketch");
  EXPECT_EQ(record.field("maps"), "12");
  EXPECT_EQ(record.field("sim_s"), "41.25");
  EXPECT_EQ(record.field("missing"), "");
}

TEST_F(LogTest, LevelFiltering) {
  const Logger logger("core.pipeline");
  logger.debug("hidden");
  logger.info("shown");
  logger.error("also shown");
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "shown");
  EXPECT_EQ(records[1].message, "also shown");
}

TEST_F(LogTest, PrefixRulesOverrideDefault) {
  LogConfig::global().configure("warn,mr=debug");
  const Logger mr_logger("mr.job");
  const Logger core_logger("core.pipeline");
  EXPECT_TRUE(mr_logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(core_logger.enabled(LogLevel::kInfo));

  mr_logger.debug("engine detail");
  core_logger.info("suppressed");
  core_logger.warn("warned");
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "engine detail");
  EXPECT_EQ(records[1].level, LogLevel::kWarn);
}

TEST_F(LogTest, MostSpecificPrefixWins) {
  LogConfig::global().configure("warn,mr=error,mr.job=trace");
  EXPECT_TRUE(Logger("mr.job").enabled(LogLevel::kTrace));
  EXPECT_FALSE(Logger("mr.sim").enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger("mr.sim").enabled(LogLevel::kError));
}

TEST_F(LogTest, FormatIsKeyValueGrammar) {
  LogRecord record;
  record.level = LogLevel::kWarn;
  record.logger = "pig";
  record.message = "odd \"input\"";
  record.fields = {{"path", "/a b/c"}, {"count", 3}};
  const std::string line = record.format();
  EXPECT_EQ(line,
            "level=warn logger=pig msg=\"odd \\\"input\\\"\" "
            "path=\"/a b/c\" count=3");
}

TEST_F(LogTest, ParseLevelNamesAndJunk) {
  EXPECT_EQ(parse_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_level("bogus", LogLevel::kError), LogLevel::kError);
  EXPECT_STREQ(level_name(LogLevel::kTrace), "trace");
}

}  // namespace
}  // namespace mrmc::obs

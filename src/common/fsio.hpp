// Atomic file emission.  Every artifact the toolchain later re-parses —
// checkpoints, traces, metrics, BENCH_*.json, doctor reports — is written to
// a same-directory temp file and committed with rename(2), so a process
// killed mid-write never leaves a half-written file that a resumed driver,
// the perf gate, or the regress doctor then mis-parses.
#pragma once

#include <cstdio>
#include <fstream>
#include <ios>
#include <string>

#include <unistd.h>

namespace mrmc::common {

/// Write `body` to `path` via "<path>.tmp.<pid>" + atomic rename.  Returns
/// false on any I/O failure; the temp file is removed best-effort so a
/// failed write leaves neither a partial target nor droppings.
inline bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace mrmc::common

file(REMOVE_RECURSE
  "libmrmc_bio.a"
)

file(REMOVE_RECURSE
  "libmrmc_simdata.a"
)

#include "core/otu_table.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace mrmc::core {

std::vector<OtuEntry> build_otu_table(std::span<const int> labels,
                                      std::span<const Sketch> sketches,
                                      SketchEstimator estimator,
                                      std::size_t medoid_cap) {
  MRMC_REQUIRE(labels.size() == sketches.size(), "one sketch per label");
  std::map<int, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    MRMC_REQUIRE(labels[i] >= 0, "labels must be non-negative");
    members[labels[i]].push_back(i);
  }

  // Medoid scans compare each member against every other member; when the
  // sketches are uniform (the normal MinHasher output) pay the set-based sort
  // once per sketch up front and use the batched equality kernel for
  // component-match.  Ragged inputs keep the legacy per-pair path.
  const bool need_medoid =
      std::any_of(members.begin(), members.end(), [&](const auto& entry) {
        return entry.second.size() > 2 && entry.second.size() <= medoid_cap;
      });
  const bool uniform = std::all_of(
      sketches.begin(), sketches.end(),
      [&](const Sketch& s) { return s.size() == sketches.front().size(); });
  const SortedSketchStore store =
      need_medoid && uniform && estimator == SketchEstimator::kSetBased
          ? SortedSketchStore(sketches)
          : SortedSketchStore();
  auto pair_sim = [&](std::size_t i, std::size_t j) {
    if (!uniform) return sketch_similarity(sketches[i], sketches[j], estimator);
    if (estimator == SketchEstimator::kSetBased) return store.jaccard(i, j);
    return component_match_similarity(sketches[i], sketches[j]);
  };

  std::vector<OtuEntry> table;
  table.reserve(members.size());
  const auto total = static_cast<double>(labels.size());
  for (const auto& [label, indices] : members) {
    OtuEntry entry;
    entry.label = label;
    entry.size = indices.size();
    entry.abundance = static_cast<double>(indices.size()) / total;
    entry.representative = indices.front();

    if (indices.size() > 2 && indices.size() <= medoid_cap) {
      // Exact medoid: member with the highest summed similarity to the rest.
      double best_total = -1.0;
      for (const std::size_t candidate : indices) {
        double sum = 0.0;
        for (const std::size_t other : indices) {
          if (other == candidate) continue;
          sum += pair_sim(candidate, other);
        }
        if (sum > best_total) {
          best_total = sum;
          entry.representative = candidate;
        }
      }
    }
    table.push_back(entry);
  }

  std::sort(table.begin(), table.end(), [](const OtuEntry& a, const OtuEntry& b) {
    return a.size > b.size || (a.size == b.size && a.label < b.label);
  });
  return table;
}

std::vector<bio::FastaRecord> representative_reads(
    const std::vector<OtuEntry>& table, std::span<const bio::FastaRecord> reads) {
  std::vector<bio::FastaRecord> out;
  out.reserve(table.size());
  for (const auto& entry : table) {
    MRMC_REQUIRE(entry.representative < reads.size(),
                 "representative index out of range");
    bio::FastaRecord record;
    record.id = "OTU" + std::to_string(entry.label) + "_size" +
                std::to_string(entry.size);
    record.header = record.id + " rep=" + reads[entry.representative].id;
    record.seq = reads[entry.representative].seq;
    out.push_back(std::move(record));
  }
  return out;
}

std::string otu_table_tsv(const std::vector<OtuEntry>& table,
                          std::span<const bio::FastaRecord> reads) {
  std::ostringstream out;
  out << "label\tsize\tabundance\trepresentative\n";
  for (const auto& entry : table) {
    MRMC_REQUIRE(entry.representative < reads.size(),
                 "representative index out of range");
    out << entry.label << '\t' << entry.size << '\t' << entry.abundance << '\t'
        << reads[entry.representative].id << '\n';
  }
  return out.str();
}

}  // namespace mrmc::core

#include "simdata/fastq_sim.hpp"

#include <algorithm>

#include "bio/dna.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::simdata {

using common::Xoshiro256;

std::vector<bio::FastqRecord> attach_qualities(
    const std::vector<bio::FastaRecord>& reads,
    const std::vector<std::vector<std::size_t>>& error_positions,
    const QualityModel& model, std::uint64_t seed) {
  MRMC_REQUIRE(reads.size() == error_positions.size(),
               "one error-position list per read");
  MRMC_REQUIRE(model.clean_quality > model.error_quality,
               "clean bases must score above error bases");

  Xoshiro256 rng(seed);
  std::vector<bio::FastqRecord> out;
  out.reserve(reads.size());
  for (std::size_t r = 0; r < reads.size(); ++r) {
    bio::FastqRecord record;
    record.id = reads[r].id;
    record.header = reads[r].header;
    record.seq = reads[r].seq;
    record.quality.resize(record.seq.size());

    std::vector<bool> is_error(record.seq.size(), false);
    for (const std::size_t pos : error_positions[r]) {
      if (pos < is_error.size()) is_error[pos] = true;
    }
    for (std::size_t i = 0; i < record.seq.size(); ++i) {
      const bool looks_clean =
          !is_error[i] || rng.chance(model.miscalibrated);
      int score = looks_clean ? model.clean_quality : model.error_quality;
      score += static_cast<int>(rng.bounded(2 * model.jitter + 1)) - model.jitter;
      score = std::clamp(score, 0, 41);
      record.quality[i] = static_cast<char>(33 + score);
    }
    out.push_back(std::move(record));
  }
  return out;
}

FastqSimResult simulate_fastq(const std::vector<bio::FastaRecord>& templates,
                              const ErrorModel& errors, const QualityModel& model,
                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FastqSimResult result;
  result.reads.reserve(templates.size());
  result.error_positions.resize(templates.size());

  std::vector<bio::FastaRecord> noisy;
  noisy.reserve(templates.size());
  for (std::size_t r = 0; r < templates.size(); ++r) {
    // Inline error application that records positions (apply_errors() is
    // position-blind, so re-implemented here with bookkeeping).
    bio::FastaRecord read = templates[r];
    std::string seq;
    std::vector<std::size_t>& positions = result.error_positions[r];
    for (const char c : templates[r].seq) {
      const double roll = rng.uniform();
      if (roll < errors.del_rate) {
        // Deletion: mark the neighbouring output position as suspect.
        if (!seq.empty()) positions.push_back(seq.size() - 1);
        continue;
      }
      if (roll < errors.del_rate + errors.ins_rate) {
        positions.push_back(seq.size());
        seq.push_back(bio::decode_base(static_cast<int>(rng.bounded(4))));
        seq.push_back(c);
        continue;
      }
      if (roll < errors.del_rate + errors.ins_rate + errors.subst_rate) {
        int code = bio::encode_base(c);
        if (code < 0) code = 0;
        positions.push_back(seq.size());
        seq.push_back(
            bio::decode_base((code + 1 + static_cast<int>(rng.bounded(3))) % 4));
        continue;
      }
      seq.push_back(c);
    }
    if (seq.empty()) seq = templates[r].seq;
    read.seq = std::move(seq);
    noisy.push_back(std::move(read));
  }

  result.reads = attach_qualities(noisy, result.error_positions, model,
                                  common::mix64(seed ^ 0xfa57'0000ULL));
  return result;
}

}  // namespace mrmc::simdata

file(REMOVE_RECURSE
  "libmrmc_mr.a"
)

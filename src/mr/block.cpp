#include "mr/block.hpp"

#include "common/error.hpp"

namespace mrmc::mr {

namespace {

// The wire format is little-endian; the engine already assumes a
// little-endian host elsewhere (StableHasher hashes raw integer bytes), so
// plain memcpy of native integers is the encoding.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read_at(std::span<const std::uint8_t> bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

std::size_t words_needed(std::uint64_t rows, std::uint32_t elem_bits) {
  return static_cast<std::size_t>(
      (rows * elem_bits + 63) / 64);
}

std::uint64_t header_payload_checksum(std::uint32_t elem_bits,
                                      std::uint32_t cols, std::uint64_t rows,
                                      const std::uint64_t* words,
                                      std::size_t num_words) noexcept {
  StableHasher hasher;
  const std::uint32_t head[4] = {BinaryBlock::kMagic, BinaryBlock::kVersion,
                                 elem_bits, cols};
  hasher.write(head, sizeof(head));
  hasher.write(&rows, sizeof(rows));
  hasher.write(words, num_words * sizeof(std::uint64_t));
  return hasher.finish();
}

}  // namespace

BinaryBlock::BinaryBlock(std::uint32_t elem_bits, std::uint64_t rows,
                         std::uint32_t cols)
    : elem_bits_(elem_bits),
      rows_(rows),
      cols_(cols),
      wpc_(words_needed(rows, elem_bits)),
      words_(wpc_ * cols, 0) {
  MRMC_REQUIRE(valid_elem_bits(elem_bits),
               "BinaryBlock width must be one of 1/2/4/8/16/32/64 bits");
}

std::uint64_t BinaryBlock::checksum() const noexcept {
  return header_payload_checksum(elem_bits_, cols_, rows_, words_.data(),
                                 words_.size());
}

std::vector<std::uint8_t> BinaryBlock::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + words_.size() * sizeof(std::uint64_t));
  put(out, kMagic);
  put(out, kVersion);
  put(out, elem_bits_);
  put(out, cols_);
  put(out, rows_);
  put(out, checksum());
  const auto offset = out.size();
  out.resize(offset + words_.size() * sizeof(std::uint64_t));
  std::memcpy(out.data() + offset, words_.data(),
              words_.size() * sizeof(std::uint64_t));
  return out;
}

namespace {

struct ParsedHeader {
  std::uint32_t elem_bits = 0;
  std::uint32_t cols = 0;
  std::uint64_t rows = 0;
  std::size_t wpc = 0;
  std::size_t num_words = 0;
};

ParsedHeader parse_and_validate(std::span<const std::uint8_t> bytes) {
  MRMC_REQUIRE(bytes.size() >= BinaryBlock::kHeaderBytes,
               "binary block shorter than its 32-byte header");
  MRMC_REQUIRE(read_at<std::uint32_t>(bytes, 0) == BinaryBlock::kMagic,
               "binary block magic mismatch (not an MRBB block)");
  MRMC_REQUIRE(read_at<std::uint32_t>(bytes, 4) == BinaryBlock::kVersion,
               "unsupported binary block version");
  ParsedHeader header;
  header.elem_bits = read_at<std::uint32_t>(bytes, 8);
  header.cols = read_at<std::uint32_t>(bytes, 12);
  header.rows = read_at<std::uint64_t>(bytes, 16);
  MRMC_REQUIRE(valid_elem_bits(header.elem_bits),
               "binary block width must be one of 1/2/4/8/16/32/64 bits");
  header.wpc = words_needed(header.rows, header.elem_bits);
  header.num_words = header.wpc * header.cols;
  MRMC_REQUIRE(bytes.size() == BinaryBlock::kHeaderBytes +
                                   header.num_words * sizeof(std::uint64_t),
               "binary block payload size does not match its header");
  // Checksum over header + payload; payload words are read unaligned.
  StableHasher hasher;
  hasher.write(bytes.data(), 16);  // magic, version, elem_bits, cols
  hasher.write(bytes.data() + 16, 8);  // rows
  hasher.write(bytes.data() + BinaryBlock::kHeaderBytes,
               header.num_words * sizeof(std::uint64_t));
  MRMC_REQUIRE(hasher.finish() == read_at<std::uint64_t>(bytes, 24),
               "binary block checksum mismatch (corrupt payload)");
  return header;
}

}  // namespace

BinaryBlock BinaryBlock::deserialize(std::span<const std::uint8_t> bytes) {
  const ParsedHeader header = parse_and_validate(bytes);
  BinaryBlock block(header.elem_bits, header.rows, header.cols);
  std::memcpy(block.words_.data(), bytes.data() + kHeaderBytes,
              header.num_words * sizeof(std::uint64_t));
  return block;
}

BinaryBlockView::BinaryBlockView(std::span<const std::uint8_t> bytes) {
  const ParsedHeader header = parse_and_validate(bytes);
  payload_ = bytes.data() + BinaryBlock::kHeaderBytes;
  elem_bits_ = header.elem_bits;
  rows_ = header.rows;
  cols_ = header.cols;
  wpc_ = header.wpc;
}

}  // namespace mrmc::mr

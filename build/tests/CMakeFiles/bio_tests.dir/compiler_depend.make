# Empty compiler generated dependencies file for bio_tests.
# This may be replaced when dependencies are built.

#include "obs/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "core/mrmc.hpp"
#include "mr/faults.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::obs::pipeline {
namespace {

// ------------------------------------------------------- lineage context

TEST(Lineage, NoScopeMeansNoClaim) {
  EXPECT_FALSE(active());
  EXPECT_FALSE(claim().has_value());
  EXPECT_FALSE(last_claim().has_value());
  EXPECT_FALSE(take_flow_link().valid);
}

TEST(Lineage, ClaimsAdvanceTheSequenceAndCarryTheStage) {
  PipelineScope scope("unit");
  EXPECT_TRUE(active());
  // The id is the name plus a process-wide serial.
  EXPECT_EQ(scope.id().rfind("unit#", 0), 0u);

  const auto first = claim();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->pipeline, scope.id());
  EXPECT_EQ(first->stage, "");
  EXPECT_EQ(first->round, -1);
  EXPECT_EQ(first->sequence, 0u);

  {
    StageScope stage("sketch", 3);
    const auto second = claim();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->stage, "sketch");
    EXPECT_EQ(second->round, 3);
    EXPECT_EQ(second->sequence, 1u);
    EXPECT_EQ(last_claim()->sequence, 1u);
  }
  // StageScope restored the previous (empty) stage.
  const auto third = claim();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->stage, "");
  EXPECT_EQ(third->sequence, 2u);
}

TEST(Lineage, NestedScopesShadowAndRestore) {
  PipelineScope outer("outer");
  (void)claim();
  {
    PipelineScope inner("inner");
    const auto inner_claim = claim();
    ASSERT_TRUE(inner_claim.has_value());
    EXPECT_EQ(inner_claim->pipeline.rfind("inner#", 0), 0u);
    EXPECT_EQ(inner_claim->sequence, 0u);
  }
  const auto outer_claim = claim();
  ASSERT_TRUE(outer_claim.has_value());
  EXPECT_EQ(outer_claim->pipeline, outer.id());
  EXPECT_EQ(outer_claim->sequence, 1u);  // outer counter kept its place
}

TEST(Lineage, StageScopeOutsideAPipelineIsANoOp) {
  StageScope stage("orphan");
  EXPECT_FALSE(active());
  EXPECT_FALSE(claim().has_value());
}

TEST(Lineage, FlowLinksAreConsumedOnce) {
  PipelineScope scope("flows");
  EXPECT_FALSE(take_flow_link().valid);
  set_flow_link(7, 1234.5);
  const FlowLink link = take_flow_link();
  EXPECT_TRUE(link.valid);
  EXPECT_EQ(link.pid, 7u);
  EXPECT_EQ(link.end_ts_us, 1234.5);
  EXPECT_FALSE(take_flow_link().valid);  // consumed
}

TEST(Lineage, FlowEventIdsAreDeterministic) {
  Claim a{"pipeline-x#1", "sketch", -1, 2};
  Claim b{"pipeline-x#1", "similarity", -1, 2};  // stage is irrelevant
  Claim c{"pipeline-y#1", "sketch", -1, 2};
  EXPECT_EQ(flow_event_id(a), flow_event_id(b));
  EXPECT_NE(flow_event_id(a), flow_event_id(c));
  EXPECT_NE(flow_event_id(a), flow_event_id(Claim{"pipeline-x#1", "", -1, 3}));
}

// ------------------------------------------------------- synthetic analyze

report::JobInput stage_input(const std::string& pipeline,
                             const std::string& stage, std::size_t sequence,
                             double startup_s, double shuffle_bytes) {
  report::JobInput input;
  input.name = stage;
  input.nodes = 2;
  input.map_slots_per_node = 2;
  input.reduce_slots_per_node = 1;
  input.job_startup_s = startup_s;
  input.shuffle_s = 0.5;
  input.shuffle_bytes = shuffle_bytes;
  input.map_tasks = {{0, 0, 0, 0.0, 4.0, true},
                     {1, 0, 1, 0.0, 3.0, true},
                     {2, 1, 0, 0.0, 5.0, true},
                     {3, 1, 1, 0.0, 4.5, true}};
  input.reduce_tasks = {{0, 0, 0, 0.0, 2.0, true}, {1, 1, 0, 0.0, 2.5, true}};
  input.pipeline = pipeline;
  input.stage = stage;
  input.sequence = sequence;
  return input;
}

PipelineInput two_stage_input() {
  PipelineInput input;
  input.id = "unit#1";
  StageRecord first{stage_input("unit#1", "sketch", 0, 8.0, 9e5), 1000.0,
                    21000.0};
  StageRecord second{stage_input("unit#1", "cluster", 1, 2.0, 1e5), 25000.0,
                     30000.0};
  input.stages = {first, second};
  return input;
}

TEST(Analyze, StitchesStagesInSequenceOrder) {
  const PipelineReport report = analyze(two_stage_input());
  EXPECT_EQ(report.id, "unit#1");
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].job.name, "sketch");
  EXPECT_EQ(report.stages[1].job.name, "cluster");

  // Aggregates are the left-to-right sums of the per-stage critical paths:
  // stage total = startup + map makespan (5.0) + shuffle (0.5) + reduce
  // makespan (2.5).
  EXPECT_EQ(report.startup_s, 8.0 + 2.0);
  EXPECT_EQ(report.map_s, 5.0 + 5.0);
  EXPECT_EQ(report.shuffle_s, 0.5 + 0.5);
  EXPECT_EQ(report.reduce_s, 2.5 + 2.5);
  EXPECT_EQ(report.sim_total_s,
            report.stages[0].job.total_s + report.stages[1].job.total_s);
  EXPECT_EQ(report.shuffle_bytes, 9e5 + 1e5);
  EXPECT_EQ(report.stages[0].sim_share + report.stages[1].sim_share, 1.0);

  // Wall facts from the driver's windows (microseconds -> seconds).
  EXPECT_TRUE(report.has_wall);
  EXPECT_DOUBLE_EQ(report.wall_total_s, (30000.0 - 1000.0) * 1e-6);
  EXPECT_DOUBLE_EQ(report.stages[1].gap_before_s, (25000.0 - 21000.0) * 1e-6);
  EXPECT_DOUBLE_EQ(report.driver_gap_s, (25000.0 - 21000.0) * 1e-6);
}

TEST(Analyze, StagesSortBySequenceNotArrivalOrder) {
  PipelineInput input = two_stage_input();
  std::swap(input.stages[0], input.stages[1]);
  const PipelineReport report = analyze(input);
  EXPECT_EQ(report.stages[0].job.name, "sketch");
  EXPECT_EQ(report.stages[1].job.name, "cluster");
}

TEST(Analyze, IncludeWallFalseDropsEveryWallFact) {
  PipelineAnalyzeOptions options;
  options.include_wall = false;
  const PipelineReport report = analyze(two_stage_input(), options);
  EXPECT_FALSE(report.has_wall);
  EXPECT_EQ(report.wall_total_s, 0.0);
  EXPECT_EQ(report.driver_gap_s, 0.0);
  for (const StageReport& stage : report.stages) {
    EXPECT_FALSE(stage.has_wall);
    EXPECT_EQ(stage.wall_s, 0.0);
    EXPECT_EQ(stage.gap_before_s, 0.0);
  }
  const std::string json = to_json(report);
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

TEST(Analyze, FindingsNameTheDominantStageAndStartup) {
  PipelineInput input = two_stage_input();
  // Make "sketch" dominate: stretch its map tasks.
  for (auto& task : input.stages[0].job.map_tasks) task.end_s = 60.0;
  const PipelineReport report = analyze(input);
  bool dominant = false;
  bool startup = false;
  for (const auto& finding : report.findings) {
    if (finding.id == "stage-dominant") dominant = true;
    if (finding.id == "startup-bound-pipeline") startup = true;
  }
  EXPECT_TRUE(dominant);
  EXPECT_FALSE(startup);  // startup share shrank with the longer maps
}

TEST(Renderers, TextJsonHtmlAndBenchAgreeOnTheStory) {
  const PipelineReport report = analyze(two_stage_input());
  const std::string text = to_text(report);
  EXPECT_NE(text.find("unit#1"), std::string::npos);
  EXPECT_NE(text.find("sketch"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);

  const auto parsed = common::parse_json(to_json(report));
  EXPECT_EQ(parsed.at("id").string, "unit#1");
  EXPECT_EQ(parsed.at("stages").array.size(), 2u);
  EXPECT_TRUE(parsed.at("stages").array[0].has("job"));

  const std::vector<PipelineReport> reports{report};
  const std::string html = to_html(reports);
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("unit#1"), std::string::npos);

  // Bench rows key on (pipeline, stage) with the process serial stripped.
  const auto bench = common::parse_json(to_bench_json(reports));
  EXPECT_EQ(bench.at("bench").string, "pipeline");
  EXPECT_EQ(bench.at("schema_version").number, 1.0);
  const auto& rows = bench.at("rows").array;
  ASSERT_EQ(rows.size(), 3u);  // two stages + <total>
  EXPECT_EQ(rows[0].at("pipeline").string, "unit");
  EXPECT_EQ(rows[2].at("stage").string, "<total>");
}

// ------------------------------------------------------- end to end

class PipelineDoctorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_output_path("");
    Tracer::global().set_enabled(true);
    Collector::global().clear();
    Collector::global().set_enabled(true);
  }
  void TearDown() override {
    Collector::global().set_enabled(false);
    Collector::global().clear();
    Tracer::global().set_enabled(false);
    Tracer::global().set_output_path("");
    Tracer::global().clear();
  }

  static std::vector<bio::FastaRecord> sample_reads(std::size_t count) {
    simdata::WholeMetagenomeOptions options;
    options.reads = count;
    return simdata::build_whole_metagenome(
               simdata::whole_metagenome_spec("S2"), options)
        .reads;
  }

  static core::PipelineResult run_sample(const std::string& trace_path,
                                         std::size_t threads = 2,
                                         core::Mode mode =
                                             core::Mode::kHierarchical) {
    core::PipelineParams params;
    params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true,
                      .seed = 1};
    params.mode = mode;
    params.theta = mode == core::Mode::kHierarchical ? 0.5 : 0.3;
    core::ExecutionOptions exec;
    exec.threads = threads;
    exec.records_per_split = 16;
    Tracer::global().set_output_path(trace_path);
    return core::run_pipeline(sample_reads(80), params, exec);
  }
};

TEST_F(PipelineDoctorTest, TraceReconstructionIsByteIdenticalToInProcess) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_pipeline_roundtrip.json";
  run_sample(trace_path);

  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  EXPECT_EQ(in_process[0].stages.size(), 3u);

  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  // The whole serialized report — sim facts AND the driver's wall windows —
  // agrees byte for byte with the in-process collection.
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));
  EXPECT_EQ(to_text(in_process[0]), to_text(offline[0]));
}

TEST_F(PipelineDoctorTest, LshCandidateStagesAppearAndRoundTrip) {
  // The LSH backend adds two jobs the doctor has never been taught about —
  // "candidates" and "verify" — and the stage list must pick them up from
  // lineage alone, with the trace reconstruction still byte-identical.
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_pipeline_candidates.json";
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true, .seed = 1};
  params.mode = core::Mode::kGreedy;
  params.theta = 0.3;
  params.candidates.backend = core::candidates::Backend::kLshBanded;
  core::ExecutionOptions exec;
  exec.threads = 2;
  exec.records_per_split = 16;
  Tracer::global().set_output_path(trace_path);
  core::run_pipeline(sample_reads(80), params, exec);

  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  ASSERT_EQ(in_process[0].stages.size(), 4u);
  EXPECT_EQ(in_process[0].stages[0].job.name, "sketch");
  EXPECT_EQ(in_process[0].stages[1].job.name, "candidates");
  EXPECT_EQ(in_process[0].stages[2].job.name, "verify");
  EXPECT_EQ(in_process[0].stages[3].job.name, "greedy-cluster");

  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));
  EXPECT_EQ(to_text(in_process[0]), to_text(offline[0]));
}

TEST_F(PipelineDoctorTest, SamplerProgressAndFaultsLeaveTheReportIdentical) {
  // Combined-feature round trip: resource sampler + fault plan + progress
  // tracking + lineage all on.  Counter and flow events ride along in the
  // trace but must not perturb the reconstructed pipeline report.
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_pipeline_combined.json";

  auto& progress_tracker = obs::progress::Tracker::global();
  progress_tracker.set_render(false);
  progress_tracker.set_enabled(true);
  core::PipelineResult result;
  {
    SamplerScope sampler(ResourceSampler::global());
    core::PipelineParams params;
    params.minhash = {.kmer = 5, .num_hashes = 40, .canonical = true,
                      .seed = 1};
    params.mode = core::Mode::kHierarchical;
    params.theta = 0.5;
    core::ExecutionOptions exec;
    exec.threads = 2;
    exec.records_per_split = 16;
    exec.fault_plan = mr::faults::FaultPlan::random(11, exec.cluster.nodes, 1,
                                                    30.0);
    Tracer::global().set_output_path(trace_path);
    result = core::run_pipeline(sample_reads(80), params, exec);
  }
  progress_tracker.set_enabled(false);

  // The trace really carries the ride-along layers...
  std::ifstream in(trace_path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("sim progress"), std::string::npos);
  EXPECT_NE(text.str().find("sim active tasks"), std::string::npos);
  EXPECT_NE(text.str().find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.str().find("job_lineage"), std::string::npos);

  // ...and the reconstruction still matches the in-process bytes exactly.
  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  const std::vector<PipelineReport> offline = analyze_trace_file(trace_path);
  ASSERT_EQ(in_process.size(), 1u);
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(to_json(in_process[0]), to_json(offline[0]));

  // The single-job doctor is equally unperturbed by the new layers.
  const auto jobs = report::analyze_trace_file(trace_path);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].pipeline, in_process[0].id);
}

TEST_F(PipelineDoctorTest, SimFactsAreStableAcrossThreadCounts) {
  const std::string one_path = ::testing::TempDir() + "/mrmc_pipe_t1.json";
  const std::string three_path = ::testing::TempDir() + "/mrmc_pipe_t3.json";
  run_sample(one_path, 1);
  Collector::global().clear();
  Tracer::global().clear();
  run_sample(three_path, 3);

  PipelineAnalyzeOptions options;
  options.include_wall = false;  // wall pacing is the only thread-y layer
  std::vector<PipelineReport> one = analyze_trace_file(one_path, options);
  std::vector<PipelineReport> three = analyze_trace_file(three_path, options);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(three.size(), 1u);

  // The process-wide pipeline serial differs between the two runs; normalize
  // the ids, then demand byte-identical reports.
  const auto normalize = [](PipelineReport& report) {
    report.id = "normalized";
    for (auto& stage : report.stages) stage.job.pipeline = "normalized";
  };
  normalize(one[0]);
  normalize(three[0]);
  EXPECT_EQ(to_json(one[0]), to_json(three[0]));
}

TEST_F(PipelineDoctorTest, CollectorFlushWritesTheConfiguredFormat) {
  const std::string out_path = ::testing::TempDir() + "/mrmc_pipe_flush.json";
  run_sample(::testing::TempDir() + "/mrmc_pipe_flush_trace.json");
  Collector::global().set_output_path(out_path);
  ASSERT_TRUE(Collector::global().flush());
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = common::parse_json(text.str());
  ASSERT_EQ(parsed.at("pipelines").array.size(), 1u);
  EXPECT_EQ(parsed.at("pipelines").array[0].at("stages").array.size(), 3u);
}

#ifdef MRMC_DOCTOR_BIN
TEST_F(PipelineDoctorTest, CliPipelineModeReproducesTheInProcessReport) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_pipeline_cli_trace.json";
  const std::string out_path =
      ::testing::TempDir() + "/mrmc_pipeline_cli_report.json";
  run_sample(trace_path);

  const std::string command = std::string(MRMC_DOCTOR_BIN) + " pipeline " +
                              trace_path + " --format=json -o " + out_path;
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::ifstream in(out_path);
  std::ostringstream cli_text;
  cli_text << in.rdbuf();
  const std::vector<PipelineReport> in_process =
      Collector::global().reports();
  ASSERT_EQ(in_process.size(), 1u);
  const std::vector<PipelineReport> all = in_process;
  EXPECT_EQ(cli_text.str(), to_json(std::span<const PipelineReport>(all)));
}

TEST_F(PipelineDoctorTest, CliJobsAndJobSelectorsBehave) {
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_pipeline_cli_jobs.json";
  const std::string jobs_path =
      ::testing::TempDir() + "/mrmc_pipeline_cli_jobs.txt";
  run_sample(trace_path);

  // `jobs` lists every simulated job with its pid and lineage.
  const std::string jobs_cmd = std::string(MRMC_DOCTOR_BIN) + " jobs " +
                               trace_path + " -o " + jobs_path;
  ASSERT_EQ(std::system(jobs_cmd.c_str()), 0) << jobs_cmd;
  std::ifstream in(jobs_path);
  std::ostringstream listing;
  listing << in.rdbuf();
  EXPECT_NE(listing.str().find("pid 2"), std::string::npos);
  EXPECT_NE(listing.str().find("\"sketch\""), std::string::npos);
  EXPECT_NE(listing.str().find("pipeline \""), std::string::npos);

  // --job narrows the report to one pid; an unknown pid is a clear error.
  const std::string one_job = std::string(MRMC_DOCTOR_BIN) + " " + trace_path +
                              " --job 2 --format=json -o " +
                              ::testing::TempDir() + "/mrmc_cli_job2.json";
  EXPECT_EQ(std::system(one_job.c_str()), 0) << one_job;
  const std::string bad_job = std::string(MRMC_DOCTOR_BIN) + " " + trace_path +
                              " --job 999 --format=json -o /dev/null"
                              " 2>/dev/null";
  EXPECT_NE(std::system(bad_job.c_str()), 0) << bad_job;
}
#endif  // MRMC_DOCTOR_BIN

}  // namespace
}  // namespace mrmc::obs::pipeline

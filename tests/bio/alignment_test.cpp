#include "bio/alignment.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "bio/dna.hpp"

namespace mrmc::bio {
namespace {

TEST(NwScore, IdenticalSequences) {
  EXPECT_EQ(nw_score("ACGT", "ACGT"), 4);
}

TEST(NwScore, SingleMismatch) {
  // 3 matches + 1 mismatch = 3 - 1 = 2.
  EXPECT_EQ(nw_score("ACGT", "ACGA"), 2);
}

TEST(NwScore, GapIsPreferredWhenCheaper) {
  // "ACGT" vs "AGT": best is one gap: 3*1 + 1*(-2) = 1.
  EXPECT_EQ(nw_score("ACGT", "AGT"), 1);
}

TEST(NwScore, EmptyAgainstNonEmpty) {
  EXPECT_EQ(nw_score("", "ACG"), -6);
  EXPECT_EQ(nw_score("ACG", ""), -6);
  EXPECT_EQ(nw_score("", ""), 0);
}

TEST(NwScore, IsSymmetric) {
  EXPECT_EQ(nw_score("ACGGTA", "AGGT"), nw_score("AGGT", "ACGGTA"));
}

TEST(NwScore, CustomParams) {
  const AlignParams params{.match = 2, .mismatch = -3, .gap = -4};
  EXPECT_EQ(nw_score("AC", "AC", params), 4);
  EXPECT_EQ(nw_score("AC", "AG", params), -1);
}

TEST(NwAlign, IdenticalGivesFullIdentity) {
  const auto result = nw_align("ACGTACGT", "ACGTACGT");
  EXPECT_DOUBLE_EQ(result.identity, 1.0);
  EXPECT_EQ(result.columns, 8u);
  EXPECT_EQ(result.score, 8);
}

TEST(NwAlign, CompletelyDifferent) {
  const auto result = nw_align("AAAA", "TTTT");
  EXPECT_DOUBLE_EQ(result.identity, 0.0);
}

TEST(NwAlign, HalfIdentity) {
  const auto result = nw_align("AATT", "AAGG");
  EXPECT_DOUBLE_EQ(result.identity, 0.5);
  EXPECT_EQ(result.columns, 4u);
}

TEST(NwAlign, ScoreMatchesNwScore) {
  const std::string a = "ACGGTTACG";
  const std::string b = "ACGTTTAG";
  EXPECT_EQ(nw_align(a, b).score, nw_score(a, b));
}

TEST(NwAlign, EmptyInputs) {
  EXPECT_DOUBLE_EQ(nw_align("", "").identity, 1.0);
  const auto result = nw_align("", "ACG");
  EXPECT_DOUBLE_EQ(result.identity, 0.0);
  EXPECT_EQ(result.columns, 3u);
}

TEST(NwAlign, GapColumnsCountedInIdentityDenominator) {
  // "AAAA" vs "AA": 2 matches over >= 4 columns.
  const auto result = nw_align("AAAA", "AA");
  EXPECT_EQ(result.columns, 4u);
  EXPECT_DOUBLE_EQ(result.identity, 0.5);
}

TEST(NwAlign, BandedMatchesFullForSimilarSequences) {
  const std::string a = "ACGGTTACGATCGATCGAAGTACCA";
  std::string b = a;
  b[5] = 'A';
  b[12] = 'T';
  const auto full = nw_align(a, b);
  const auto banded = nw_align(a, b, {.band = 4});
  EXPECT_EQ(full.score, banded.score);
  EXPECT_DOUBLE_EQ(full.identity, banded.identity);
}

TEST(GlobalIdentity, WidensBandForLengthDifference) {
  // Band 1 could not reach the corner for a length gap of 6; the wrapper
  // widens it instead of throwing.
  const std::string a(30, 'A');
  const std::string b(24, 'A');
  EXPECT_NO_THROW(global_identity(a, b, {.band = 1}));
  EXPECT_DOUBLE_EQ(global_identity(a, b, {.band = 1}), 24.0 / 30.0);
}

TEST(GlobalIdentity, ReflectsErrorRate) {
  // A read with exactly 5% substitutions aligns at ~95% identity.
  common::Xoshiro256 rng(7);
  std::string a;
  for (int i = 0; i < 200; ++i) {
    a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
  }
  std::string b = a;
  for (int e = 0; e < 10; ++e) {
    const std::size_t pos = rng.bounded(b.size());
    b[pos] = complement_base(b[pos]);
  }
  const double identity = global_identity(a, b);
  EXPECT_GE(identity, 0.94);
  EXPECT_LE(identity, 1.0);
}

TEST(GlobalIdentity, SymmetricOnRandomPairs) {
  common::Xoshiro256 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::string a, b;
    const std::size_t la = 20 + rng.bounded(30);
    const std::size_t lb = 20 + rng.bounded(30);
    for (std::size_t i = 0; i < la; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    for (std::size_t i = 0; i < lb; ++i) {
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    EXPECT_DOUBLE_EQ(global_identity(a, b), global_identity(b, a));
  }
}

TEST(GlobalIdentity, BoundedToUnitInterval) {
  common::Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::string a, b;
    for (int i = 0; i < 40; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    const double identity = global_identity(a, b);
    EXPECT_GE(identity, 0.0);
    EXPECT_LE(identity, 1.0);
  }
}

TEST(GlobalIdentity, RandomDnaBackgroundIsNearHalf) {
  // Unrelated DNA aligns at roughly 50-60% identity with unit scores —
  // the background level behind the paper's whole-metagenome W.Sim values.
  common::Xoshiro256 rng(21);
  double total = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string a, b;
    for (int i = 0; i < 150; ++i) {
      a.push_back(decode_base(static_cast<int>(rng.bounded(4))));
      b.push_back(decode_base(static_cast<int>(rng.bounded(4))));
    }
    total += global_identity(a, b);
  }
  const double mean = total / kTrials;
  EXPECT_GT(mean, 0.40);
  EXPECT_LT(mean, 0.70);
}

}  // namespace
}  // namespace mrmc::bio

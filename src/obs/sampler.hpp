// Background resource telemetry sampler (obs v2 layer 1).
//
// Samples time-series gauges — process RSS, CPU utilization, and any
// registered probe (thread-pool queue depth, live map/fetch/reduce task
// counts) — on a fixed period, publishing every sample twice:
//
//   * as a Chrome-trace counter event ('C') on the wall-clock track, so a
//     flushed trace shows resource usage stacked under the task spans;
//   * as an obs gauge `sample.<name>`, so MRMC_METRICS snapshots carry the
//     last observed value.
//
// Enable with MRMC_SAMPLE=<period_ms> (the background thread starts on
// first use of the global sampler) or programmatically via set_enabled();
// `sample_once()` takes one synchronous tick for deterministic tests.
//
// Layering: obs cannot see mr, so the sampler knows nothing about task
// graphs — mr::runtime registers plain `double()` probes here instead
// (probe inversion).  Probes must be callable from the sampler thread at
// any time and must not block.
//
// Simulated jobs need reproducible traces, so wall-clock sampling is wrong
// for them: emit_sim_task_counters() instead evaluates task activity on a
// deterministic sim-time grid (pure arithmetic over the finished timeline),
// producing identical counter events on every run of a seeded job.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace mrmc::obs {

/// One task's lifetime on the simulated clock, [start_s, end_s).
struct SimInterval {
  double start_s = 0.0;
  double end_s = 0.0;
};

class ResourceSampler {
 public:
  /// The process-wide sampler; first use reads MRMC_SAMPLE (a period in
  /// milliseconds — enables sampling and starts the background thread).
  static ResourceSampler& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Enabling starts the background thread (when the period is positive);
  /// disabling stops it.  sample_once() works regardless.
  void set_enabled(bool enabled);

  [[nodiscard]] double period_ms() const;
  void set_period_ms(double period_ms);

  /// Register (or replace) a named probe.  The sampler calls it on every
  /// tick from its own thread; it must be thread-safe and non-blocking.
  void register_probe(std::string name, std::function<double()> probe);

  [[nodiscard]] std::size_t probe_count() const;

  /// Take one synchronous sample: built-in process gauges (RSS, CPU
  /// utilization) plus every registered probe, each published as a trace
  /// counter event and a `sample.<name>` gauge.
  void sample_once();

  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

 private:
  ResourceSampler();

  void start_locked();
  void stop_thread();
  void run();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  double period_ms_ = 100.0;
  bool stop_ = false;
  std::thread thread_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;

  // CPU-utilization state: deltas between consecutive samples.
  std::mutex cpu_mutex_;
  double last_cpu_s_ = -1.0;
  double last_wall_us_ = 0.0;
};

/// RAII sampler bracket: flips the sampler to `enabled` at construction and
/// restores the state it found at destruction — including when an exception
/// unwinds mid-job, so the background thread is always joined (or left
/// running) exactly as the caller found it.  Double-enabling is harmless:
/// set_enabled(true) on a running sampler is a no-op start.
class SamplerScope {
 public:
  explicit SamplerScope(ResourceSampler& sampler, bool enabled = true)
      : sampler_(&sampler), previous_(sampler.enabled()) {
    sampler_->set_enabled(enabled);
  }
  ~SamplerScope() { sampler_->set_enabled(previous_); }
  SamplerScope(const SamplerScope&) = delete;
  SamplerScope& operator=(const SamplerScope&) = delete;

 private:
  ResourceSampler* sampler_;
  bool previous_;
};

/// Resident set size of this process in bytes (/proc/self/statm on Linux);
/// 0.0 where unavailable.
[[nodiscard]] double process_rss_bytes() noexcept;

/// Total CPU seconds (user + system) this process has consumed (getrusage);
/// -1.0 where unavailable.
[[nodiscard]] double process_cpu_seconds() noexcept;

/// Deterministic sim-time counter grid for one simulated job: evaluates how
/// many map / fetch / reduce tasks are live at each of `points + 1` equally
/// spaced instants t_k = horizon_s * k / points and emits one
/// "sim active tasks" counter event per instant on the job's `pid` track
/// group.  Pure arithmetic over the finished timeline — identical output on
/// every run of a seeded job, unlike wall-clock sampling.  No-op while the
/// tracer is disabled or horizon_s <= 0.
void emit_sim_task_counters(Tracer& tracer, std::uint32_t pid,
                            std::span<const SimInterval> map_tasks,
                            std::span<const SimInterval> fetches,
                            std::span<const SimInterval> reduce_tasks,
                            double horizon_s, std::size_t points = 64);

}  // namespace mrmc::obs

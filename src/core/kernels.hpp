// core::kernels — the batched compute substrate under every clustering mode.
//
// The paper's whole compute budget is Equation 4/5 sketching plus all-pairs
// sketch comparison (Sections III-A/B).  This layer provides those two hot
// loops as batched kernels with a runtime-dispatched AVX2 path and a
// portable scalar fallback that is **bit-identical** (both paths compute the
// exact Carter-Wegman residue and exact match counts, so greedy /
// hierarchical / pipeline outputs and the simulated-clock cost model do not
// depend on the instruction set):
//
//  * min_sketch        — batched minwise hashing: SoA hash parameters,
//                        hash-outer / feature-inner loops, 4-way unrolled
//                        Mersenne-61 reduction (AVX2: 4 hash lanes per
//                        feature broadcast).
//  * count_equal       — positions with equal 64-bit components (AVX2:
//                        cmpeq + movemask popcount), the component-match
//                        estimator's inner loop.
//  * component_match_matrix — cache-blocked all-pairs similarity fill over a
//                        flat SketchMatrix (no pointer chase per cell).
//  * argmin            — first-minimum row scan for the nearest-neighbour
//                        chain in agglomerate().
//
// Dispatch is race-free: the backend is chosen once via a function-local
// static (C++11 magic statics).  `MRMC_FORCE_SCALAR=1` is the escape hatch
// that pins the scalar path regardless of CPU support.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mrmc::common {
class ThreadPool;
}  // namespace mrmc::common

namespace mrmc::core::kernels {

/// Instruction-set backend for the kernels.  Every backend produces
/// bit-identical results; only throughput differs.
enum class Backend {
  kScalar,  ///< portable C++, 4-way unrolled
  kAvx2,    ///< AVX2 (x86-64), 4 × 64-bit lanes
};

[[nodiscard]] const char* backend_name(Backend backend) noexcept;

/// True when `backend` can run on this machine (compiled in + CPU support).
[[nodiscard]] bool backend_available(Backend backend) noexcept;

/// The dispatched backend: best available unless MRMC_FORCE_SCALAR is set
/// (or a test override is active).  Decided once, thread-safe.
[[nodiscard]] Backend active_backend() noexcept;

/// Test hook: force every `active_backend()` call to return `backend` while
/// alive.  Install before spawning worker threads; not for production use.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(Backend backend);
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;
};

/// p = 2^61 - 1, the Mersenne prime of the Carter-Wegman family.
inline constexpr std::uint64_t kMersenne61 = (std::uint64_t{1} << 61) - 1;

/// Sentinel minimum for an empty feature set (no x to minimize over).
inline constexpr std::uint64_t kEmptyFeatureMin = ~std::uint64_t{0};

namespace detail {

/// (value) mod (2^61 - 1) for a full 128-bit product, exploiting the
/// Mersenne structure: (hi·2^61 + lo) ≡ hi + lo (mod p).
constexpr std::uint64_t mod_mersenne61(__uint128_t value) noexcept {
  value = (value & kMersenne61) + (value >> 61);  // < 2^64 + 2^61
  value = (value & kMersenne61) + (value >> 61);  // < 2^61 + 8
  auto reduced = static_cast<std::uint64_t>(value);
  if (reduced >= kMersenne61) reduced -= kMersenne61;
  return reduced;
}

/// One Carter-Wegman evaluation h(x) = (a·x + b) mod p.
constexpr std::uint64_t cw_hash(std::uint64_t a, std::uint64_t b,
                                std::uint64_t x) noexcept {
  return mod_mersenne61(static_cast<__uint128_t>(a) * x + b);
}

/// The fixed order-scrambling bijection C-MinHash applies after its affine
/// core (the role π plays in C-MinHash-(σ, π)).  An affine π over the same
/// prime field would collapse into the shared multiplier, leaving every
/// hash slot k a pure *rotation* of one premultiplied point set — the
/// per-slot minima would then be strongly correlated and the estimator
/// variance well above independent MinHash.  A non-linear mix breaks that
/// collapse: rotated copies of the point set land in unrelated orders, so
/// the K argmins decorrelate as in the two-genuine-permutations analysis.
/// xor-fold then multiply (half a Murmur3 finalizer round) is bijective on
/// u64 and costs one multiply per (feature, hash) cell.  The multiplier's
/// low half is deliberately 1: then y·M mod 2^64 = y + ((y·M_hi mod 2^32)
/// << 32), which the AVX2 kernel evaluates with a single 32×32 vpmuludq
/// instead of the three a full mullo64 emulation needs — that one-vs-three
/// multiply gap is where the C-MinHash sketch-compute speedup over the
/// universal kernel comes from.  No trailing xor-fold: it would rewrite
/// only the low half, i.e. reorder points solely within ties of the
/// multiply-scrambled high half — far too rare (~2^-32 per pair) to move
/// the minima, so it is pure cost for this use.  The scramble's strength
/// for MinHash comes from the first fold feeding the chaotic low half into
/// the multiply that rewrites the ordering-dominant high half.
inline constexpr std::uint64_t kCMinMixMul = 0xff51afd700000001ULL;
inline constexpr std::uint64_t kCMinMixMulInverse = 0x00ae502900000001ULL;

constexpr std::uint64_t cmin_mix64(std::uint64_t y) noexcept {
  y ^= y >> 32;
  y *= kCMinMixMul;
  return y;
}

/// Exact inverse of cmin_mix64 (the multiply inverts via the odd constant's
/// inverse mod 2^64; xor-by-high-half is an involution).  Lets tests
/// observe the affine structure *underneath* the scramble.
constexpr std::uint64_t cmin_unmix64(std::uint64_t y) noexcept {
  y *= kCMinMixMulInverse;
  y ^= y >> 32;
  return y;
}

}  // namespace detail

/// Batched minwise hashing (Equations 4/5): for every hash i,
///   out[i] = min over features x of ((mul[i]·x + add[i]) mod p) [% modulus]
/// with `modulus == 0` meaning "no outer mod".  `mul`, `add`, `out` must
/// have equal length (the SoA hash-parameter layout).  An empty feature set
/// fills `out` with kEmptyFeatureMin.
void min_sketch(std::span<const std::uint64_t> mul,
                std::span<const std::uint64_t> add, std::uint64_t modulus,
                std::span<const std::uint64_t> features,
                std::span<std::uint64_t> out,
                Backend backend = active_backend());

/// Batched C-MinHash minwise hashing (Li & Li's two-permutation scheme):
/// for every hash slot k,
///   out[k] = min over features x of mix((mul·x + add[k]) mod p) [% modulus]
/// with a *single shared multiplier* — the affine part of π∘(σ + k)
/// collapses to h_k(x) = (A·x + B_k) mod p, so the kernel pays one
/// Mersenne-61 product per feature (amortized over all K hashes) instead of
/// one per (feature × hash); the fixed non-linear detail::cmin_mix64 then
/// plays π's order-scrambling role so the K minima decorrelate (see its
/// comment).  `add` carries the per-hash offsets B_k; `modulus == 0` means
/// "no outer mod".  Empty feature sets fill `out` with kEmptyFeatureMin,
/// matching min_sketch.
void cmin_sketch(std::uint64_t mul, std::span<const std::uint64_t> add,
                 std::uint64_t modulus,
                 std::span<const std::uint64_t> features,
                 std::span<std::uint64_t> out,
                 Backend backend = active_backend());

/// Number of positions i with a[i] == b[i] (spans must have equal length).
[[nodiscard]] std::size_t count_equal(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      Backend backend = active_backend()) noexcept;

/// True for the packed widths the b-bit kernels support: divisors of 64, so
/// a lane never straddles a word.
[[nodiscard]] constexpr bool valid_pack_bits(std::size_t bits) noexcept {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16 ||
         bits == 32 || bits == 64;
}

/// Matching lanes between two b-bit packed rows (the packed counterpart of
/// count_equal): `a` and `b` hold `cols` lanes of `bits` bits each, packed
/// little-endian (lane 0 in the low bits of word 0).  Trailing pad lanes
/// must be zero in both rows (PackedSketchMatrix guarantees this), so pads
/// compare equal and the count needs no tail correction.  Scalar path is
/// XOR + OR-fold + popcount SWAR; AVX2 kicks in for byte-aligned widths
/// (8/16/32/64) via cmpeq + movemask.  Exact integer counts — bit-identical
/// across backends.
[[nodiscard]] std::size_t count_equal_packed(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::size_t cols, std::size_t bits,
    Backend backend = active_backend()) noexcept;

/// First index of the minimum of `row` (ties -> lowest index), or
/// row.size() when the row is empty.  +inf entries mark dead slots; the scan
/// assumes no NaNs.
[[nodiscard]] std::size_t argmin(std::span<const double> row,
                                 Backend backend = active_backend()) noexcept;

/// Number of distinct values in `values`.  `scratch` is a caller-owned
/// buffer reused across calls, so the hot path performs no allocation once
/// the buffer has warmed up.
[[nodiscard]] std::size_t count_distinct(std::span<const std::uint64_t> values,
                                         std::vector<std::uint64_t>& scratch);

/// Flat row-major sketch store: rows() sketches of cols() minima each in one
/// contiguous uint64_t block — the similarity kernels' substrate (replaces
/// vector<vector<uint64_t>> and its per-cell pointer chase).
class SketchMatrix {
 public:
  SketchMatrix() = default;
  SketchMatrix(std::size_t rows, std::size_t cols, std::uint64_t fill = 0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  [[nodiscard]] std::span<std::uint64_t> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] const std::uint64_t* row_ptr(std::size_t i) const noexcept {
    return data_.data() + i * cols_;
  }
  [[nodiscard]] const std::uint64_t* data() const noexcept { return data_.data(); }

  /// Gather a vector-of-sketches into a flat matrix.  All sketches must have
  /// the same length (MinHasher guarantees this).
  static SketchMatrix from_sketches(
      std::span<const std::vector<std::uint64_t>> sketches);

  /// Inverse of from_sketches (for APIs that still speak vector<Sketch>).
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> to_sketches() const;

  friend bool operator==(const SketchMatrix&, const SketchMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint64_t> data_;
};

/// In-place truncation of every component to its low bits (the b-bit
/// sketch): value &= mask.  Applied before packing (and before the local
/// in-memory paths at b < 64) so local and distributed runs score the same
/// truncated values.
void mask_components(SketchMatrix& sketches, std::uint64_t mask) noexcept;

/// b-bit packed sketch rows: rows() sketches of cols() lanes, each lane the
/// low `bits()` bits of the corresponding SketchMatrix component, packed
/// little-endian into words_per_row() u64 words per row.  `bits` divides 64
/// (valid_pack_bits), so lanes never straddle words and row comparison is
/// count_equal_packed over the two word spans.  Pad lanes are always zero.
class PackedSketchMatrix {
 public:
  PackedSketchMatrix() = default;
  PackedSketchMatrix(std::size_t rows, std::size_t cols, std::size_t bits);

  /// Pack the low `bits` of every component of `matrix`.
  static PackedSketchMatrix pack(const SketchMatrix& matrix, std::size_t bits);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return wpr_; }

  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * wpr_, wpr_};
  }

  void set(std::size_t i, std::size_t j, std::uint64_t value) noexcept {
    const std::size_t lanes = 64 / bits_;
    const std::size_t word = i * wpr_ + j / lanes;
    const std::size_t shift = (j % lanes) * bits_;
    const std::uint64_t mask = lane_mask();
    data_[word] = (data_[word] & ~(mask << shift)) | ((value & mask) << shift);
  }
  [[nodiscard]] std::uint64_t get(std::size_t i, std::size_t j) const noexcept {
    const std::size_t lanes = 64 / bits_;
    return (data_[i * wpr_ + j / lanes] >> ((j % lanes) * bits_)) & lane_mask();
  }

  /// matches(count_equal_packed) between rows i and j.
  [[nodiscard]] std::size_t count_equal_rows(
      std::size_t i, std::size_t j,
      Backend backend = active_backend()) const noexcept {
    return count_equal_packed(row(i), row(j), cols_, bits_, backend);
  }

  friend bool operator==(const PackedSketchMatrix&,
                         const PackedSketchMatrix&) = default;

 private:
  [[nodiscard]] std::uint64_t lane_mask() const noexcept {
    return bits_ >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << bits_) - 1;
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t bits_ = 0;
  std::size_t wpr_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Cache-blocked all-pairs component-match fill: writes the full symmetric
/// n×n matrix (diagonal 1.0f) into `out` with `stride` floats per row.
/// out[i*stride+j] = float(count_equal(row i, row j) / cols); 0.0f off the
/// diagonal when cols == 0 (matching component_match_similarity on empty
/// sketches).  Rows are processed in blocks so each block stays L1-resident
/// while the partner rows stream.  When `pool` is non-null, blocks run in
/// parallel; the result is identical at any thread count.
void component_match_matrix(const SketchMatrix& sketches, float* out,
                            std::size_t stride,
                            Backend backend = active_backend(),
                            common::ThreadPool* pool = nullptr);

}  // namespace mrmc::core::kernels

#include "bio/seq_stats.hpp"

#include <gtest/gtest.h>

namespace mrmc::bio {
namespace {

std::vector<FastaRecord> make_records(std::initializer_list<const char*> seqs) {
  std::vector<FastaRecord> records;
  int i = 0;
  for (const char* seq : seqs) {
    records.push_back({"r" + std::to_string(i++), "", seq});
  }
  return records;
}

TEST(SeqStats, EmptySet) {
  const SeqSetStats stats = compute_stats({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.total_bases, 0u);
}

TEST(SeqStats, BasicCounts) {
  const auto records = make_records({"ACGT", "AC", "ACGTACGT"});
  const SeqSetStats stats = compute_stats(records);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.total_bases, 14u);
  EXPECT_EQ(stats.min_length, 2u);
  EXPECT_EQ(stats.max_length, 8u);
  EXPECT_NEAR(stats.mean_length, 14.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.median_length, 4u);
}

TEST(SeqStats, N50Definition) {
  // Lengths 8, 4, 2: cumulative from longest 8 >= 14/2 -> N50 = 8.
  EXPECT_EQ(compute_stats(make_records({"ACGT", "AC", "ACGTACGT"})).n50, 8u);
  // Lengths 5, 5, 5, 5: half of 20 reached at the second 5 -> N50 = 5.
  EXPECT_EQ(compute_stats(make_records({"AAAAA", "CCCCC", "GGGGG", "TTTTT"})).n50,
            5u);
}

TEST(SeqStats, GcAndComposition) {
  const SeqSetStats stats = compute_stats(make_records({"GGCC", "AATT"}));
  EXPECT_DOUBLE_EQ(stats.gc, 0.5);
  EXPECT_EQ(stats.base_counts[0], 2u);  // A
  EXPECT_EQ(stats.base_counts[1], 2u);  // C
  EXPECT_EQ(stats.base_counts[2], 2u);  // G
  EXPECT_EQ(stats.base_counts[3], 2u);  // T
}

TEST(SeqStats, AmbiguousFraction) {
  const SeqSetStats stats = compute_stats(make_records({"ACGNNNGT"}));
  EXPECT_NEAR(stats.ambiguous_fraction, 3.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.gc, 3.0 / 5.0);  // C+G+G over the 5 ACGT bases
}

TEST(SeqStats, SummaryMentionsKeyNumbers) {
  const auto summary =
      compute_stats(make_records({"ACGT", "ACGTACGT"})).summary();
  EXPECT_NE(summary.find("2 reads"), std::string::npos);
  EXPECT_NE(summary.find("12 bp"), std::string::npos);
  EXPECT_NE(summary.find("N50 8"), std::string::npos);
}

}  // namespace
}  // namespace mrmc::bio

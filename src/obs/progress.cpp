#include "obs/progress.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mrmc::obs::progress {

namespace {

// Over-completion is possible (lost-input reruns re-complete a task), so
// display/fraction math clamps done at planned.
long clamped(long done, long planned) noexcept {
  return planned > 0 ? std::min(done, planned) : done;
}

}  // namespace

Tracker::Tracker() {
  if (const char* env = std::getenv("MRMC_PROGRESS");
      env != nullptr && *env != '\0') {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracker& Tracker::global() {
  static Tracker instance;
  return instance;
}

void Tracker::set_min_render_interval_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  min_render_interval_ms_ = ms;
}

void Tracker::begin_job(std::string name, std::size_t planned_maps,
                        std::size_t planned_fetches,
                        std::size_t planned_reduces) {
  for (std::atomic<long>& done : done_) {
    done.store(0, std::memory_order_relaxed);
  }
  planned_[static_cast<std::size_t>(TaskClass::kOther)].store(
      0, std::memory_order_relaxed);
  planned_[static_cast<std::size_t>(TaskClass::kMap)].store(
      static_cast<long>(planned_maps), std::memory_order_relaxed);
  planned_[static_cast<std::size_t>(TaskClass::kFetch)].store(
      static_cast<long>(planned_fetches), std::memory_order_relaxed);
  planned_[static_cast<std::size_t>(TaskClass::kReduce)].store(
      static_cast<long>(planned_reduces), std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  bytes_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  job_ = std::move(name);
  active_ = true;
  job_start_ = std::chrono::steady_clock::now();
  // Backdate the throttle so the first completion renders immediately.
  last_render_ = job_start_ - std::chrono::hours(1);
}

void Tracker::task_done(TaskClass cls) noexcept {
  if (!enabled()) return;
  done_[static_cast<std::size_t>(cls)].fetch_add(1, std::memory_order_relaxed);
  maybe_render(false);
}

void Tracker::retry() noexcept {
  if (!enabled()) return;
  retries_.fetch_add(1, std::memory_order_relaxed);
}

void Tracker::add_bytes(double bytes) noexcept {
  if (!enabled()) return;
  double current = bytes_.load(std::memory_order_relaxed);
  while (!bytes_.compare_exchange_weak(current, current + bytes,
                                       std::memory_order_relaxed)) {
  }
}

void Tracker::end_job() {
  maybe_render(true);
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = false;
  ++jobs_completed_;
}

Tracker::Snapshot Tracker::snapshot() const {
  Snapshot snap;
  const auto load = [](const std::atomic<long>& value) {
    return static_cast<std::size_t>(
        std::max(0L, value.load(std::memory_order_relaxed)));
  };
  snap.planned_maps = load(planned_[static_cast<std::size_t>(TaskClass::kMap)]);
  snap.planned_fetches =
      load(planned_[static_cast<std::size_t>(TaskClass::kFetch)]);
  snap.planned_reduces =
      load(planned_[static_cast<std::size_t>(TaskClass::kReduce)]);
  snap.done_maps = load(done_[static_cast<std::size_t>(TaskClass::kMap)]);
  snap.done_fetches = load(done_[static_cast<std::size_t>(TaskClass::kFetch)]);
  snap.done_reduces =
      load(done_[static_cast<std::size_t>(TaskClass::kReduce)]);
  snap.done_other = load(done_[static_cast<std::size_t>(TaskClass::kOther)]);
  snap.retries = static_cast<std::size_t>(
      std::max(0L, retries_.load(std::memory_order_relaxed)));
  snap.bytes = bytes_.load(std::memory_order_relaxed);
  const std::size_t planned =
      snap.planned_maps + snap.planned_fetches + snap.planned_reduces;
  const std::size_t done =
      std::min(snap.done_maps, snap.planned_maps) +
      std::min(snap.done_fetches, snap.planned_fetches) +
      std::min(snap.done_reduces, snap.planned_reduces);
  snap.fraction =
      planned > 0 ? static_cast<double>(done) / static_cast<double>(planned)
                  : 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.job = job_;
  snap.active = active_;
  snap.jobs_completed = jobs_completed_;
  if (active_) {
    snap.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - job_start_)
                         .count();
    if (snap.fraction > 0.0) {
      snap.eta_s = snap.elapsed_s * (1.0 - snap.fraction) / snap.fraction;
    }
  }
  return snap;
}

void Tracker::maybe_render(bool final_line) {
  if (!render_.load(std::memory_order_relaxed)) return;
  // A worker that loses the race simply skips this refresh; the next
  // completion will catch the display up.
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (!final_line) return;
    lock.lock();
  }
  if (!active_) return;
  const auto now = std::chrono::steady_clock::now();
  if (!final_line &&
      std::chrono::duration<double, std::milli>(now - last_render_).count() <
          min_render_interval_ms_) {
    return;
  }
  last_render_ = now;

  const auto loadc = [this](TaskClass cls) {
    const auto i = static_cast<std::size_t>(cls);
    return clamped(done_[i].load(std::memory_order_relaxed),
                   planned_[i].load(std::memory_order_relaxed));
  };
  const long done_maps = loadc(TaskClass::kMap);
  const long done_fetches = loadc(TaskClass::kFetch);
  const long done_reduces = loadc(TaskClass::kReduce);
  const long planned_total =
      planned_[static_cast<std::size_t>(TaskClass::kMap)].load(
          std::memory_order_relaxed) +
      planned_[static_cast<std::size_t>(TaskClass::kFetch)].load(
          std::memory_order_relaxed) +
      planned_[static_cast<std::size_t>(TaskClass::kReduce)].load(
          std::memory_order_relaxed);
  const long done_total = done_maps + done_fetches + done_reduces;
  const double fraction =
      planned_total > 0
          ? static_cast<double>(done_total) / static_cast<double>(planned_total)
          : 0.0;
  const double elapsed_s =
      std::chrono::duration<double>(now - job_start_).count();
  const double mb = bytes_.load(std::memory_order_relaxed) / 1e6;
  const long retries = retries_.load(std::memory_order_relaxed);

  char eta[32] = "--";
  if (!final_line && fraction > 0.0 && fraction < 1.0) {
    std::snprintf(eta, sizeof eta, "%.1fs",
                  elapsed_s * (1.0 - fraction) / fraction);
  }
  std::fprintf(
      stderr,
      "\r[mrmc] %s %3.0f%% | map %ld/%ld fetch %ld/%ld reduce %ld/%ld | "
      "%.1f MB | retries %ld | %.1fs elapsed, eta %s\x1b[K%s",
      job_.c_str(), fraction * 100.0, done_maps,
      planned_[static_cast<std::size_t>(TaskClass::kMap)].load(
          std::memory_order_relaxed),
      done_fetches,
      planned_[static_cast<std::size_t>(TaskClass::kFetch)].load(
          std::memory_order_relaxed),
      done_reduces,
      planned_[static_cast<std::size_t>(TaskClass::kReduce)].load(
          std::memory_order_relaxed),
      mb, retries, elapsed_s, eta, final_line ? "\n" : "");
  std::fflush(stderr);
}

void emit_sim_progress_grid(Tracer& tracer, std::uint32_t pid,
                            std::span<const SimInterval> map_tasks,
                            std::span<const SimInterval> fetches,
                            std::span<const SimInterval> reduce_tasks,
                            double horizon_s, std::size_t points) {
  if (!tracer.enabled() || horizon_s <= 0.0 || points == 0) return;
  const auto done_at = [](std::span<const SimInterval> tasks, double t) {
    long done = 0;
    for (const SimInterval& task : tasks) {
      if (task.end_s <= t) ++done;
    }
    return done;
  };
  for (std::size_t k = 0; k <= points; ++k) {
    const double t =
        horizon_s * static_cast<double>(k) / static_cast<double>(points);
    tracer.sim_counter(
        pid, "sim progress", t,
        {{"map_done", std::to_string(done_at(map_tasks, t))},
         {"fetch_done", std::to_string(done_at(fetches, t))},
         {"reduce_done", std::to_string(done_at(reduce_tasks, t))}});
  }
}

}  // namespace mrmc::obs::progress

#include "simdata/marker16s.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::simdata {

using common::mix64;
using common::Xoshiro256;

std::vector<Genome> generate_16s_genes(std::size_t count,
                                       const Marker16sParams& params,
                                       std::uint64_t seed) {
  MRMC_REQUIRE(params.gene_length >= params.block_length,
               "gene must hold at least one block");
  const Genome scaffold =
      random_genome("16s_scaffold", params.gene_length, params.gc, seed);

  std::vector<Genome> genes;
  genes.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    Genome gene;
    gene.name = "OTU_" + std::to_string(t);
    gene.seq.reserve(scaffold.seq.size());
    // Mutate block-by-block: even blocks conserved, odd blocks variable.
    std::size_t block_index = 0;
    for (std::size_t pos = 0; pos < scaffold.seq.size();
         pos += params.block_length, ++block_index) {
      const std::size_t len =
          std::min(params.block_length, scaffold.seq.size() - pos);
      Genome block{"block", scaffold.seq.substr(pos, len)};
      const bool variable = (block_index % 2) == 1;
      const double rate = variable ? params.variable_divergence
                                   : params.conserved_divergence;
      const Genome mutated =
          mutate_genome(block, "block", rate, rate / 25.0,
                        mix64(seed ^ (t * 1315423911ULL + block_index)));
      gene.seq += mutated.seq;
    }
    genes.push_back(std::move(gene));
  }
  return genes;
}

LabeledReads amplicon_reads(const std::vector<Genome>& genes,
                            const std::vector<double>& abundances,
                            std::size_t total, const AmpliconParams& params,
                            std::uint64_t seed) {
  MRMC_REQUIRE(!genes.empty(), "need at least one gene");
  MRMC_REQUIRE(genes.size() == abundances.size(), "one abundance per gene");
  const double mass = std::accumulate(abundances.begin(), abundances.end(), 0.0);
  MRMC_REQUIRE(mass > 0.0, "abundances must have positive mass");

  // Cumulative distribution for gene selection.
  std::vector<double> cdf(abundances.size());
  double acc = 0.0;
  for (std::size_t g = 0; g < abundances.size(); ++g) {
    MRMC_REQUIRE(abundances[g] >= 0.0, "abundances must be non-negative");
    acc += abundances[g] / mass;
    cdf[g] = acc;
  }
  cdf.back() = 1.0;

  Xoshiro256 rng(seed);
  LabeledReads out;
  out.reads.reserve(total);
  out.labels.reserve(total);
  for (const auto& gene : genes) out.species.push_back(gene.name);

  for (std::size_t i = 0; i < total; ++i) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto g = static_cast<std::size_t>(it - cdf.begin());
    const Genome& gene = genes[g];

    const double jitter = rng.uniform(-params.length_jitter, params.length_jitter);
    auto len = static_cast<std::size_t>(std::max(
        1.0, static_cast<double>(params.read_length) * (1.0 + jitter)));
    const std::size_t start_lo = std::min(params.window_start, gene.seq.size() - 1);
    const std::size_t span = std::min(params.window_span, gene.seq.size() - start_lo);
    len = std::min(len, span);
    const std::size_t max_offset =
        params.primer_anchored ? std::min(span - len, params.start_jitter)
                               : span - len;
    const std::size_t pos = start_lo + rng.bounded(max_offset + 1);

    ErrorModel errors = params.errors;
    if (params.uniform_error_rate) {
      const double scale = rng.uniform();
      errors.subst_rate *= scale;
      errors.ins_rate *= scale;
      errors.del_rate *= scale;
    }
    bio::FastaRecord rec;
    rec.id = "amp_r" + std::to_string(i);
    rec.header = rec.id + " source=" + gene.name + " label=" + std::to_string(g);
    rec.seq = apply_errors(gene.seq.substr(pos, len), errors, rng());
    if (rec.seq.empty()) rec.seq = gene.seq.substr(pos, len);
    out.reads.push_back(std::move(rec));
    out.labels.push_back(static_cast<int>(g));
  }
  return out;
}

std::vector<double> lognormal_abundances(std::size_t count, double sigma,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Box-Muller normal from two uniforms.
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    out.push_back(std::exp(sigma * z));
  }
  return out;
}

}  // namespace mrmc::simdata

// Driver-scope chaos tests: the PR's headline invariant.  For every
// pipeline shape, kill the driver (MRMC_CRASH_AFTER_STAGE) after each
// stage in turn — across fault plans and thread counts — and the resumed
// run must produce byte-identical cluster labels with every completed
// stage served from checkpoint (asserted via the hit counters).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "mr/faults.hpp"
#include "mr/recovery.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

/// setenv/unsetenv with restore — the recovery hooks read the environment.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    if (const char* old = std::getenv(name_.c_str())) old_ = old;
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

std::string fresh_dir(const std::string& tag) {
  static int serial = 0;
  const std::string dir =
      ::testing::TempDir() + "/mrmc_chaos_" + tag + std::to_string(serial++);
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<bio::FastaRecord> sample_reads() {
  return simdata::build_whole_metagenome(simdata::whole_metagenome_spec("S8"),
                                         {.reads = 50, .seed = 5})
      .reads;
}

struct PipelineCase {
  std::string name;
  PipelineParams params;
  std::vector<std::string> stages;  ///< driver stage names, in order
};

std::vector<PipelineCase> pipeline_cases() {
  MinHashParams minhash{.kmer = 5, .num_hashes = 32, .canonical = true,
                        .seed = 1};
  PipelineCase exact_greedy;
  exact_greedy.name = "exact-greedy";
  exact_greedy.params.minhash = minhash;
  exact_greedy.params.mode = Mode::kGreedy;
  exact_greedy.params.theta = 0.3;
  exact_greedy.stages = {"sketch", "greedy-cluster"};

  PipelineCase exact_hier;
  exact_hier.name = "exact-hierarchical";
  exact_hier.params.minhash = minhash;
  exact_hier.params.mode = Mode::kHierarchical;
  exact_hier.params.theta = 0.5;
  exact_hier.stages = {"sketch", "similarity", "hierarchical-cluster"};

  PipelineCase lsh_greedy;
  lsh_greedy.name = "lsh-greedy";
  lsh_greedy.params.minhash = minhash;
  lsh_greedy.params.mode = Mode::kGreedy;
  lsh_greedy.params.theta = 0.3;
  lsh_greedy.params.candidates.backend = candidates::Backend::kLshBanded;
  lsh_greedy.stages = {"sketch", "candidates", "verify", "greedy-cluster"};

  return {exact_greedy, exact_hier, lsh_greedy};
}

ExecutionOptions exec_options(std::size_t threads,
                              const mr::faults::FaultPlan& plan,
                              const std::string& checkpoint_dir) {
  ExecutionOptions exec;
  exec.threads = threads;
  exec.records_per_split = 16;
  exec.fault_plan = plan;
  exec.checkpoint_dir = checkpoint_dir;
  return exec;
}

TEST(DriverChaos, KillAfterEveryStageResumesByteIdentical) {
  const auto reads = sample_reads();
  const std::vector<std::pair<std::string, mr::faults::FaultPlan>> plans = {
      {"fault-free", {}},
      {"recovering-node", mr::faults::FaultPlan({{1, 9.0, 40.0}})},
  };

  for (const PipelineCase& c : pipeline_cases()) {
    // One uncheckpointed, fault-free baseline per shape; every kill/resume
    // combination below must reproduce exactly these labels.
    const PipelineResult baseline =
        run_pipeline(reads, c.params, exec_options(2, {}, ""));
    ASSERT_EQ(baseline.labels.size(), reads.size());

    for (const auto& [plan_name, plan] : plans) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        for (std::size_t kill = 0; kill < c.stages.size(); ++kill) {
          SCOPED_TRACE(c.name + " / " + plan_name + " / threads=" +
                       std::to_string(threads) + " / kill-after=" +
                       c.stages[kill]);
          const std::string dir = fresh_dir(c.name);
          {
            ScopedEnv crash("MRMC_CRASH_AFTER_STAGE", c.stages[kill]);
            EXPECT_THROW(
                run_pipeline(reads, c.params,
                             exec_options(threads, plan, dir)),
                mr::recovery::InjectedDriverCrash);
          }
          const PipelineResult resumed = run_pipeline(
              reads, c.params, exec_options(threads, plan, dir));

          EXPECT_EQ(resumed.labels, baseline.labels);
          EXPECT_EQ(resumed.num_clusters, baseline.num_clusters);
          // Every stage the crashed run completed is served from disk.
          EXPECT_EQ(resumed.recovery.stages, c.stages.size());
          EXPECT_EQ(resumed.recovery.checkpoint_hits, kill + 1);
          EXPECT_EQ(resumed.recovery.checkpoint_misses,
                    c.stages.size() - kill - 1);
          EXPECT_EQ(resumed.recovery.checkpoint_writes,
                    resumed.recovery.checkpoint_misses);
          EXPECT_EQ(resumed.recovery.invalid_checkpoints, 0u);
        }
      }
    }
  }
}

TEST(DriverChaos, ParkedDriverResumesAfterTheClusterIsRepaired) {
  const auto reads = sample_reads();
  const PipelineCase c = pipeline_cases()[0];  // exact-greedy
  const PipelineResult baseline =
      run_pipeline(reads, c.params, exec_options(2, {}, ""));

  // Crash after "sketch" on a healthy cluster, then try to resume under a
  // plan that strands every node: the driver parks instead of failing, and
  // the sketch checkpoint survives for the repaired run.
  const std::string dir = fresh_dir("park");
  {
    ScopedEnv crash("MRMC_CRASH_AFTER_STAGE", "sketch");
    EXPECT_THROW(run_pipeline(reads, c.params, exec_options(2, {}, dir)),
                 mr::recovery::InjectedDriverCrash);
  }
  const mr::faults::FaultPlan dead_cluster(
      {{0, 0.0, mr::faults::kNever},
       {1, 0.0, mr::faults::kNever},
       {2, 0.0, mr::faults::kNever},
       {3, 0.0, mr::faults::kNever}});
  ASSERT_FALSE(dead_cluster.leaves_schedulable(4));
  try {
    (void)run_pipeline(reads, c.params, exec_options(2, dead_cluster, dir));
    FAIL() << "expected DriverParked";
  } catch (const mr::recovery::DriverParked& parked) {
    EXPECT_NE(std::string(parked.what()).find("schedulable"),
              std::string::npos);
  }

  // Operator repairs the plan; the resumed run hits the parked-run's
  // checkpoints and matches the clean labels.
  const PipelineResult resumed =
      run_pipeline(reads, c.params, exec_options(2, {}, dir));
  EXPECT_EQ(resumed.labels, baseline.labels);
  EXPECT_EQ(resumed.recovery.checkpoint_hits, 1u);  // "sketch"
  EXPECT_FALSE(resumed.recovery.parked);
}

TEST(DriverChaos, RetriedStageLeavesLabelsByteIdentical) {
  const auto reads = sample_reads();
  const PipelineCase c = pipeline_cases()[1];  // exact-hierarchical
  const PipelineResult baseline =
      run_pipeline(reads, c.params, exec_options(2, {}, ""));

  ExecutionOptions exec = exec_options(2, {}, "");
  exec.max_job_attempts = 3;
  exec.backoff_base_s = 1e-3;
  exec.backoff_cap_s = 2e-3;
  ScopedEnv fail("MRMC_FAIL_STAGE", "similarity:2");
  const PipelineResult retried = run_pipeline(reads, c.params, exec);
  EXPECT_EQ(retried.labels, baseline.labels);
  EXPECT_EQ(retried.recovery.retries, 2u);
}

TEST(DriverChaos, ExhaustedRetriesCarryTheAttemptHistory) {
  const auto reads = sample_reads();
  const PipelineCase c = pipeline_cases()[0];
  ExecutionOptions exec = exec_options(2, {}, "");
  exec.max_job_attempts = 2;
  exec.backoff_base_s = 1e-3;
  exec.backoff_cap_s = 2e-3;
  ScopedEnv fail("MRMC_FAIL_STAGE", "sketch:5");
  try {
    (void)run_pipeline(reads, c.params, exec);
    FAIL() << "expected RetryExhausted";
  } catch (const mr::recovery::RetryExhausted& error) {
    EXPECT_EQ(error.stage(), "sketch");
    ASSERT_EQ(error.history().size(), 2u);
    EXPECT_EQ(error.history()[0].outcome, "failed");
  }
}

TEST(DriverChaos, LshCandidatesExhaustionDegradesToExactAllPairs) {
  const auto reads = sample_reads();
  const PipelineCase c = pipeline_cases()[2];  // lsh-greedy
  ExecutionOptions exec = exec_options(2, {}, "");
  exec.max_job_attempts = 2;
  exec.backoff_base_s = 1e-3;
  exec.backoff_cap_s = 2e-3;

  ScopedEnv fail("MRMC_FAIL_STAGE", "candidates:2");
  const PipelineResult degraded = run_pipeline(reads, c.params, exec);
  EXPECT_EQ(degraded.recovery.lsh_fallbacks, 1u);
  EXPECT_EQ(degraded.labels.size(), reads.size());
  EXPECT_GT(degraded.num_clusters, 0u);

  // The degraded path is itself deterministic.
  const PipelineResult again = run_pipeline(reads, c.params, exec);
  EXPECT_EQ(again.labels, degraded.labels);

  // The size guard: with the fallback disabled the exhaustion propagates.
  ExecutionOptions no_fallback = exec;
  no_fallback.lsh_fallback_max_reads = 0;
  EXPECT_THROW((void)run_pipeline(reads, c.params, no_fallback),
               mr::recovery::RetryExhausted);
}

}  // namespace
}  // namespace mrmc::core

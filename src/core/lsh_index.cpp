#include "core/lsh_index.hpp"

#include <algorithm>
#include <cmath>

#include "bio/kmer.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::core {

double lsh_collision_probability(double jaccard, std::size_t bands,
                                 std::size_t rows) noexcept {
  return 1.0 - std::pow(1.0 - std::pow(jaccard, static_cast<double>(rows)),
                        static_cast<double>(bands));
}

double lsh_threshold(std::size_t bands, std::size_t rows) noexcept {
  return std::pow(1.0 / static_cast<double>(bands),
                  1.0 / static_cast<double>(rows));
}

LshIndex::LshIndex(std::size_t sketch_size, const LshParams& params)
    : bands_(params.bands), seed_(params.seed) {
  MRMC_REQUIRE(params.bands >= 1, "need at least one band");
  MRMC_REQUIRE(sketch_size % params.bands == 0,
               "bands must divide the sketch length");
  rows_ = sketch_size / params.bands;
  buckets_.resize(bands_);
}

std::uint64_t LshIndex::bucket_key(const Sketch& sketch, std::size_t band) const {
  std::uint64_t h = common::mix64(seed_ ^ (band * 0x9e3779b97f4a7c15ULL));
  for (std::size_t r = band * rows_; r < (band + 1) * rows_; ++r) {
    h = common::mix64(h ^ sketch[r]);
  }
  return h;
}

void LshIndex::insert(int id, const Sketch& sketch) {
  MRMC_REQUIRE(sketch.size() == bands_ * rows_, "sketch length mismatch");
  for (std::size_t band = 0; band < bands_; ++band) {
    buckets_[band][bucket_key(sketch, band)].push_back(id);
  }
  ++inserted_;
}

std::vector<int> LshIndex::candidates(const Sketch& sketch) const {
  MRMC_REQUIRE(sketch.size() == bands_ * rows_, "sketch length mismatch");
  std::vector<int> out;
  for (std::size_t band = 0; band < bands_; ++band) {
    const auto it = buckets_[band].find(bucket_key(sketch, band));
    if (it == buckets_[band].end()) continue;
    for (const int id : it->second) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  return out;
}

GreedyResult greedy_cluster_indexed(std::span<const Sketch> sketches,
                                    const GreedyParams& params,
                                    const LshParams& lsh) {
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  GreedyResult result;
  const std::size_t n = sketches.size();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  const bool set_based = params.estimator == SketchEstimator::kSetBased;
  std::vector<Sketch> sorted;
  if (set_based) {
    sorted.reserve(n);
    for (const auto& sketch : sketches) {
      Sketch s = sketch;
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sorted.push_back(std::move(s));
    }
  }
  auto similarity = [&](std::size_t rep, std::size_t query) {
    return set_based
               ? bio::exact_jaccard(sorted[rep], sorted[query])
               : component_match_similarity(sketches[rep], sketches[query]);
  };

  LshIndex index(sketches.front().size(), lsh);

  // Single pass in input order: unlike Algorithm 1's repeated sweeps, the
  // index hands each query only representatives it can plausibly join.
  for (std::size_t query = 0; query < n; ++query) {
    int assigned = -1;
    for (const int cluster : index.candidates(sketches[query])) {
      ++result.comparisons;
      if (similarity(result.representatives[cluster], query) >= params.theta) {
        assigned = cluster;
        break;
      }
    }
    if (assigned < 0) {
      assigned = static_cast<int>(result.representatives.size());
      result.representatives.push_back(query);
      index.insert(assigned, sketches[query]);
    }
    result.labels[query] = assigned;
  }
  result.num_clusters = result.representatives.size();
  return result;
}

}  // namespace mrmc::core

# Empty dependencies file for ablation_lsh_index.
# This may be replaced when dependencies are built.

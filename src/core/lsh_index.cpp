#include "core/lsh_index.hpp"

#include <algorithm>

#include "bio/kmer.hpp"
#include "common/error.hpp"

namespace mrmc::core {

GreedyResult greedy_cluster_indexed(std::span<const Sketch> sketches,
                                    const GreedyParams& params,
                                    const LshParams& lsh) {
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  GreedyResult result;
  const std::size_t n = sketches.size();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  const bool set_based = params.estimator == SketchEstimator::kSetBased;
  std::vector<Sketch> sorted;
  if (set_based) {
    sorted.reserve(n);
    for (const auto& sketch : sketches) {
      Sketch s = sketch;
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
      sorted.push_back(std::move(s));
    }
  }
  auto similarity = [&](std::size_t rep, std::size_t query) {
    return set_based
               ? bio::exact_jaccard(sorted[rep], sorted[query])
               : component_match_similarity(sketches[rep], sketches[query]);
  };

  candidates::LshBucketIndex index(
      sketches.front().size(),
      candidates::validated_band_shape(sketches.front().size(), lsh.bands),
      lsh.seed);

  // Single pass in input order: unlike Algorithm 1's repeated sweeps, the
  // index hands each query only representatives it can plausibly join.
  for (std::size_t query = 0; query < n; ++query) {
    int assigned = -1;
    for (const int cluster : index.candidates(sketches[query])) {
      ++result.comparisons;
      if (similarity(result.representatives[cluster], query) >= params.theta) {
        assigned = cluster;
        break;
      }
    }
    if (assigned < 0) {
      assigned = static_cast<int>(result.representatives.size());
      result.representatives.push_back(query);
      index.insert(assigned, sketches[query]);
    }
    result.labels[query] = assigned;
  }
  result.num_clusters = result.representatives.size();
  return result;
}

}  // namespace mrmc::core

// Shared helpers for the table/figure harnesses: a tiny flag parser and the
// method runners that execute MrMC-MinH and every comparator on a sample
// with the per-dataset parameter sets used by the paper.
#pragma once

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "baselines/cdhit_like.hpp"
#include "baselines/hclust_family.hpp"
#include "baselines/mc_lsh.hpp"
#include "baselines/metacluster_like.hpp"
#include "baselines/uclust_like.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::bench {

/// Minimal --key=value / --flag parser.
class Flags {
 public:
  // GCC 12 emits a -Wrestrict false positive (PR105329) for the inlined
  // std::string copies below at -O2; the code is plain substring handling.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      // (iterator construction avoids a GCC-12 -Wrestrict false positive)
      const std::string body(arg.begin() + 2, arg.end());
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        values_[body] = "1";
      } else {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    }
  }
#pragma GCC diagnostic pop

  [[nodiscard]] std::string str(const std::string& key, std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] long num(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stol(it->second);
  }
  [[nodiscard]] double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// One table row worth of results for a method on a sample.
struct MethodResult {
  std::string method;
  std::vector<int> labels;
  std::size_t clusters_reported = 0;  ///< after the min-size filter
  double wall_s = 0.0;
  double sim_s = -1.0;  ///< simulated cluster time (MrMC variants only)
};

/// Evaluate one labeling: reported cluster count, W.Acc (if truth), W.Sim.
struct Evaluated {
  std::size_t clusters = 0;
  double wacc = -1.0;
  double wsim = 0.0;
};

/// `count_min_size` filters the reported cluster count (0 = same as
/// `min_cluster_size`); W.Acc/W.Sim always use `min_cluster_size`.
inline Evaluated evaluate(const MethodResult& result,
                          const simdata::LabeledReads& sample,
                          std::size_t min_cluster_size,
                          std::size_t wsim_pairs = 16,
                          std::size_t count_min_size = 0) {
  Evaluated out;
  out.clusters = eval::clusters_at_least(
      result.labels, count_min_size == 0 ? min_cluster_size : count_min_size);
  if (sample.has_labels()) {
    out.wacc = eval::weighted_cluster_accuracy(
        result.labels, sample.labels, {.min_cluster_size = min_cluster_size});
  }
  eval::SimilarityOptions options;
  options.min_cluster_size = std::max<std::size_t>(2, min_cluster_size);
  options.max_pairs_per_cluster = wsim_pairs;
  out.wsim = eval::weighted_similarity(result.labels, sample.reads, options);
  return out;
}

/// The paper's scaled min-size reporting rule: Tables III-V only count
/// clusters above a size floor (50 sequences at paper scale).
inline std::size_t scaled_min_cluster_size(std::size_t reads,
                                           std::size_t paper_reads) {
  if (paper_reads == 0) return 2;
  const double scaled = 50.0 * static_cast<double>(reads) /
                        static_cast<double>(paper_reads);
  return std::max<std::size_t>(2, static_cast<std::size_t>(scaled + 0.5));
}

/// Run MrMC-MinH (hierarchical or greedy) through the distributed pipeline.
inline MethodResult run_mrmc(const simdata::LabeledReads& sample,
                             core::Mode mode, int kmer, std::size_t hashes,
                             double theta, std::size_t nodes,
                             std::uint64_t seed, bool canonical = true) {
  core::PipelineParams params;
  params.minhash = {.kmer = kmer, .num_hashes = hashes, .canonical = canonical,
                    .seed = seed};
  params.mode = mode;
  params.theta = theta;
  core::ExecutionOptions exec;
  exec.cluster.nodes = nodes;

  MethodResult result;
  result.method = mode == core::Mode::kHierarchical ? "MrMC-MinH^h" : "MrMC-MinH^g";
  common::Stopwatch watch;
  auto pipeline = core::run_pipeline(sample.reads, params, exec);
  result.wall_s = watch.seconds();
  result.sim_s = pipeline.sim_total_s;
  result.labels = std::move(pipeline.labels);
  return result;
}

inline MethodResult wrap_baseline(std::string name,
                                  baselines::BaselineResult&& result) {
  MethodResult out;
  out.method = std::move(name);
  out.labels = std::move(result.labels);
  out.wall_s = result.wall_s;
  return out;
}

}  // namespace mrmc::bench

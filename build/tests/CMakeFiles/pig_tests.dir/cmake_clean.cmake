file(REMOVE_RECURSE
  "CMakeFiles/pig_tests.dir/pig/group_by_test.cpp.o"
  "CMakeFiles/pig_tests.dir/pig/group_by_test.cpp.o.d"
  "CMakeFiles/pig_tests.dir/pig/pig_test.cpp.o"
  "CMakeFiles/pig_tests.dir/pig/pig_test.cpp.o.d"
  "CMakeFiles/pig_tests.dir/pig/script_test.cpp.o"
  "CMakeFiles/pig_tests.dir/pig/script_test.cpp.o.d"
  "CMakeFiles/pig_tests.dir/pig/udf_test.cpp.o"
  "CMakeFiles/pig_tests.dir/pig/udf_test.cpp.o.d"
  "pig_tests"
  "pig_tests.pdb"
  "pig_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

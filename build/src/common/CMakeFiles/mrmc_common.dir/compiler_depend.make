# Empty compiler generated dependencies file for mrmc_common.
# This may be replaced when dependencies are built.

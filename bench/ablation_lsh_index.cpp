// Ablation — candidate generation (DESIGN.md §6): exact all-pairs vs the
// LSH-banded backend of core::candidates on a growing 16S amplicon sample.
// The exact rows show the super-linear all-pairs wall; the LSH rows stay
// near-linear, and every LSH row reports its candidate recall/precision
// against the exact >= θ oracle plus label agreement (ARI) with the
// exhaustive sweep.  This is also the driver for the 1 M-read run in
// EXPERIMENTS.md:
//
//   ./ablation_lsh_index [--max-reads=3200] [--min-reads=400]
//                        [--exact-max=N]       skip exact above N reads
//                                              (default: max-reads)
//                        [--theta=0.9] [--bands=0]   0 = auto from θ
//                        [--recall-sample=N]   oracle subsample; 0 = all rows
//                        [--seed=42] [--bench-json[=path]]
//
// With --bench-json the sweep lands in BENCH_lsh.json (schema v1, keys
// reads/backend/bands) for the perf-gate regress doctor: wall_s is a noisy
// wall-clock metric, recall_accuracy is tight (fully deterministic for a
// given seed), counters are informational.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/candidates.hpp"
#include "core/greedy.hpp"
#include "eval/candidate_recall.hpp"
#include "eval/external_indices.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  bench::apply_obs_flags(flags);
  const std::size_t max_reads = flags.num("max-reads", 3200);
  const std::size_t min_reads = flags.num("min-reads", 400);
  const std::size_t exact_max =
      flags.num("exact-max", static_cast<long>(max_reads));
  const double theta = flags.real("theta", 0.9);
  const std::size_t bands = flags.num("bands", 0);
  const std::size_t recall_sample = flags.num("recall-sample", 0);
  const std::uint64_t seed = flags.num("seed", 42);
  const auto estimator = core::SketchEstimator::kComponentMatch;

  common::ThreadPool pool;
  bench::BenchRecord record("lsh", {"reads", "backend", "bands"});
  common::TextTable table({"# Reads", "exact s", "lsh s", "cand pairs",
                           "recall", "precision", "ARI(exact,lsh)"});

  for (std::size_t reads = min_reads; reads <= max_reads; reads *= 2) {
    // Rich community: many OTUs so the sweep produces many clusters.
    const auto genes = simdata::generate_16s_genes(reads / 10, {}, seed);
    simdata::AmpliconParams amplicon;
    amplicon.errors = simdata::ErrorModel::uniform(0.01);
    amplicon.read_length = 80;
    const auto sample = simdata::amplicon_reads(
        genes, std::vector<double>(genes.size(), 1.0), reads, amplicon,
        seed + 1);

    const core::MinHasher hasher({.kmer = 12, .num_hashes = 40, .seed = seed});
    std::vector<core::Sketch> sketches(sample.reads.size());
    pool.parallel_for(sample.reads.size(), [&](std::size_t i) {
      sketches[i] = hasher.sketch(sample.reads[i].seq);
    });
    const auto matrix = core::kernels::SketchMatrix::from_sketches(
        std::span<const core::Sketch>(sketches));

    const core::GreedyParams greedy{.theta = theta, .estimator = estimator};

    // Exact oracle: today's all-pairs greedy sweep.  Above --exact-max the
    // quadratic scan is the experiment's control we deliberately skip.
    const bool run_exact = reads <= exact_max;
    core::GreedyResult exact;
    double exact_s = -1.0;
    if (run_exact) {
      common::Stopwatch watch;
      exact = core::greedy_cluster(sketches, greedy);
      exact_s = watch.seconds();
      record.row()
          .num("reads", static_cast<long>(reads))
          .str("backend", "exact")
          .num("bands", 0L)
          .num("wall_s", exact_s)
          .num("comparisons", static_cast<long>(exact.comparisons))
          .num("clusters", static_cast<long>(exact.num_clusters));
    }
    sketches.clear();
    sketches.shrink_to_fit();  // the 1 M run only needs the flat matrix

    core::candidates::Params lsh;
    lsh.backend = core::candidates::Backend::kLshBanded;
    lsh.bands = bands;
    common::Stopwatch lsh_watch;
    const auto graph =
        core::candidates::build_graph(matrix, lsh, theta, estimator, &pool);
    const auto banded = core::greedy_cluster_graph(graph, greedy);
    const double lsh_s = lsh_watch.seconds();

    const auto shape =
        core::candidates::resolve_band_shape(lsh, matrix.cols(), theta);
    const eval::CandidateRecallReport recall = eval::candidate_recall(
        matrix, theta, lsh, estimator, recall_sample, &pool);
    const double ari =
        run_exact ? eval::adjusted_rand_index(exact.labels, banded.labels)
                  : -1.0;

    auto& row = record.row()
                    .num("reads", static_cast<long>(reads))
                    .str("backend", "lsh")
                    .num("bands", static_cast<long>(shape.bands))
                    .num("wall_s", lsh_s)
                    .num("candidate_pairs", static_cast<long>(graph.edges.size()))
                    .num("clusters", static_cast<long>(banded.num_clusters))
                    .num("recall_accuracy", recall.recall)
                    .num("candidate_precision", recall.precision)
                    .num("recall_sample_reads", static_cast<long>(recall.reads));
    if (run_exact) row.num("ari_vs_exact", ari);

    table.add_row(
        {std::to_string(reads),
         run_exact ? common::fmt_f(exact_s, 3) : "-",
         common::fmt_f(lsh_s, 3), std::to_string(graph.edges.size()),
         common::fmt_f(recall.recall, 4), common::fmt_f(recall.precision, 4),
         run_exact ? common::fmt_f(ari, 3) : "-"});
  }

  std::cout << "Ablation — LSH-banded candidates vs exact all-pairs (theta="
            << theta << ")\n";
  table.print(std::cout);

  if (flags.flag("bench-json")) {
    const std::string path =
        flags.str("bench-json", record.default_path());
    const std::string target = path == "1" ? record.default_path() : path;
    if (record.write(target)) {
      std::cout << "\nwrote bench record to " << target << "\n";
    } else {
      std::cerr << "failed to write " << target << "\n";
      return 1;
    }
  }
  bench::finish_obs(flags);
  return 0;
}

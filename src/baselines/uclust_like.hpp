// UCLUST-style greedy clustering (Edgar 2010).
//
// Queries are processed in input order.  Candidate representatives are
// ranked by shared-unique-word count with the query (USEARCH's U-sort) and
// only the top `max_accepts + max_rejects` candidates are aligned: the
// first alignment reaching the identity threshold accepts the query; after
// `max_rejects` failed alignments the query founds a new cluster.  This
// candidate-ordering + early-termination pair is what makes UCLUST fast
// and slightly less accurate than exhaustive methods.
#pragma once

#include <span>

#include "baselines/baseline.hpp"

namespace mrmc::baselines {

struct UclustParams {
  double identity = 0.95;
  int word_size = 5;
  std::size_t max_rejects = 8;  ///< USEARCH default
  int band = 16;
};

BaselineResult uclust_cluster(std::span<const bio::FastaRecord> reads,
                              const UclustParams& params = {});

}  // namespace mrmc::baselines

// A Pig Latin interpreter for the dialect the paper's Algorithm 3 uses,
// plus the common relational operators (FILTER / DISTINCT / ORDER / LIMIT).
// Scripts are parsed into statements and executed on a PigContext, so the
// paper's published script runs verbatim (modulo $PARAMETER substitution):
//
//   A = LOAD '$INPUT' USING FastaStorage;
//   B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid));
//   C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, seqid, $KMER));
//   E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(seqkmer, seqid2, $NUMHASH, $DIV));
//   I = GROUP E ALL;
//   J = FOREACH I GENERATE FLATTEN(CalculatePairwiseSimilarity(minwise, I.F));
//   K = FOREACH (GROUP J ALL) GENERATE FLATTEN(AgglomerativeHierarchicalClustering(sim, $LINK, $NUMHASH, $CUTOFF));
//   L = FOREACH I GENERATE FLATTEN(GreedyClustering(I.F, $NUMHASH, $CUTOFF));
//   STORE K INTO '$OUTPUT1';
//   STORE L INTO '$OUTPUT2';
//
// Comments start with "--".  UDF argument lists may reference fields by
// name (ignored — the paper's UDFs read positional fields) while numeric /
// $-parameters configure the UDF.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pig/pig.hpp"

namespace mrmc::pig {

/// One parsed statement.
struct Statement {
  enum class Kind {
    kLoad,      ///< X = LOAD '<path>' [USING FastaStorage]
    kForeach,   ///< X = FOREACH <rel|(GROUP rel ALL)> GENERATE FLATTEN(Udf(args))
    kGroupAll,  ///< X = GROUP <rel> ALL
    kGroupBy,   ///< X = GROUP <rel> BY $<field>
    kDistinct,  ///< X = DISTINCT <rel>
    kOrderBy,   ///< X = ORDER <rel> BY $<field> [DESC]
    kLimit,     ///< X = LIMIT <rel> <n>
    kFilter,    ///< X = FILTER <rel> BY $<field> <op> <literal>
    kStore,     ///< STORE <rel> INTO '<path>'
  };

  Kind kind = Kind::kLoad;
  std::string target;            ///< assigned alias ("" for STORE)
  std::string source;            ///< input alias / quoted path
  std::string udf_name;          ///< kForeach
  std::vector<std::string> udf_args;
  bool inner_group_all = false;  ///< kForeach over (GROUP src ALL)
  std::size_t field = 0;         ///< kOrderBy / kFilter field index
  bool descending = false;       ///< kOrderBy
  std::string comparison;        ///< kFilter: one of > < >= <= == !=
  double literal = 0.0;          ///< kFilter numeric literal / kLimit count
};

/// Parse a script; throws InvalidArgument with a line number on bad syntax.
std::vector<Statement> parse_script(std::string_view text);

/// Substitute $NAME occurrences from `params` (longest-name-first).  Unknown
/// $NAMEs are an error.
std::string substitute_parameters(std::string_view text,
                                  const std::map<std::string, std::string>& params);

struct ScriptResult {
  std::map<std::string, Relation> relations;  ///< every named alias
  std::vector<std::string> stored_paths;      ///< STORE targets, in order
  double sim_time_s = 0.0;
  std::size_t jobs_run = 0;
};

/// Execute a script (after parameter substitution) on a context.  The UDF
/// registry covers the paper's six functions; `udf_seed` seeds
/// CalculateMinwiseHash's hash family (the $DIV argument of the paper is
/// folded into it).
ScriptResult run_script(PigContext& context, std::string_view text,
                        const std::map<std::string, std::string>& params = {},
                        std::uint64_t udf_seed = 1);

/// The paper's Algorithm 3 script, verbatim (with $-parameters).
std::string_view algorithm3_script();

}  // namespace mrmc::pig

file(REMOVE_RECURSE
  "CMakeFiles/ablation_sketch.dir/ablation_sketch.cpp.o"
  "CMakeFiles/ablation_sketch.dir/ablation_sketch.cpp.o.d"
  "ablation_sketch"
  "ablation_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "simdata/genome.hpp"

#include <gtest/gtest.h>

#include "bio/alignment.hpp"
#include "bio/dna.hpp"
#include "bio/kmer.hpp"
#include "common/error.hpp"

namespace mrmc::simdata {
namespace {

TEST(TaxonRank, NamesAndMonotoneDivergence) {
  EXPECT_STREQ(taxon_rank_name(TaxonRank::kSpecies), "Species");
  EXPECT_STREQ(taxon_rank_name(TaxonRank::kKingdom), "Kingdom");
  double previous = 0.0;
  for (const auto rank :
       {TaxonRank::kStrain, TaxonRank::kSpecies, TaxonRank::kGenus,
        TaxonRank::kFamily, TaxonRank::kOrder, TaxonRank::kPhylum,
        TaxonRank::kKingdom}) {
    EXPECT_GT(taxon_divergence(rank), previous);
    previous = taxon_divergence(rank);
  }
}

TEST(RandomGenome, LengthAndAlphabet) {
  const Genome genome = random_genome("g", 5000, 0.5, 1);
  EXPECT_EQ(genome.seq.size(), 5000u);
  EXPECT_TRUE(bio::is_valid_dna(genome.seq));
}

TEST(RandomGenome, GcContentTracksTarget) {
  for (const double gc : {0.3, 0.5, 0.65}) {
    const Genome genome = random_genome("g", 20000, gc, 2);
    EXPECT_NEAR(genome.gc(), gc, 0.02) << gc;
  }
}

TEST(RandomGenome, DeterministicPerSeed) {
  EXPECT_EQ(random_genome("a", 1000, 0.5, 3).seq,
            random_genome("b", 1000, 0.5, 3).seq);
  EXPECT_NE(random_genome("a", 1000, 0.5, 3).seq,
            random_genome("a", 1000, 0.5, 4).seq);
}

TEST(RandomGenome, RejectsBadGc) {
  EXPECT_THROW(random_genome("g", 10, 1.5, 1), common::InvalidArgument);
}

TEST(MutateGenome, ZeroRatesCopyParent) {
  const Genome parent = random_genome("p", 2000, 0.5, 5);
  const Genome child = mutate_genome(parent, "c", 0.0, 0.0, 6);
  EXPECT_EQ(child.seq, parent.seq);
}

TEST(MutateGenome, SubstitutionRateIsRespected) {
  const Genome parent = random_genome("p", 50000, 0.5, 7);
  const Genome child = mutate_genome(parent, "c", 0.1, 0.0, 8);
  ASSERT_EQ(child.seq.size(), parent.seq.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < parent.seq.size(); ++i) {
    if (parent.seq[i] != child.seq[i]) ++diffs;
  }
  EXPECT_NEAR(static_cast<double>(diffs) / 50000.0, 0.1, 0.01);
}

TEST(MutateGenome, IndelsChangeLengthModestly) {
  const Genome parent = random_genome("p", 20000, 0.5, 9);
  const Genome child = mutate_genome(parent, "c", 0.0, 0.02, 10);
  // Insertions and deletions are balanced in expectation.
  EXPECT_NEAR(static_cast<double>(child.seq.size()), 20000.0, 400.0);
  EXPECT_NE(child.seq, parent.seq);
}

TEST(MutateGenome, AlignmentIdentityMatchesDivergence) {
  const Genome parent = random_genome("p", 400, 0.5, 11);
  const Genome child = mutate_genome(parent, "c", 0.05, 0.0, 12);
  const double identity = bio::global_identity(parent.seq, child.seq);
  EXPECT_GT(identity, 0.90);
  EXPECT_LT(identity, 1.0);
}

TEST(RelatedGenomes, CountAndDistinctness) {
  const auto family = related_genomes("fam", 3, 5000, 0.5, TaxonRank::kGenus, 13);
  ASSERT_EQ(family.size(), 3u);
  EXPECT_NE(family[0].seq, family[1].seq);
  EXPECT_NE(family[1].seq, family[2].seq);
}

TEST(RelatedGenomes, CloserRankMeansHigherKmerSimilarity) {
  const auto species = related_genomes("s", 2, 20000, 0.5, TaxonRank::kSpecies, 14);
  const auto phyla = related_genomes("p", 2, 20000, 0.5, TaxonRank::kPhylum, 14);
  const auto jaccard = [](const Genome& a, const Genome& b) {
    return bio::exact_jaccard(bio::kmer_set(a.seq, {.k = 12}),
                              bio::kmer_set(b.seq, {.k = 12}));
  };
  EXPECT_GT(jaccard(species[0], species[1]), jaccard(phyla[0], phyla[1]));
}

// ------------------------------------------------------- MarkovGenomeModel

TEST(MarkovGenomeModel, RowsAreDistributions) {
  const MarkovGenomeModel model(0.5, 0.3, 21);
  for (std::size_t context = 0; context < MarkovGenomeModel::kContexts; ++context) {
    double total = 0;
    for (int b = 0; b < 4; ++b) {
      EXPECT_GE(model.probability(context, b), 0.0);
      total += model.probability(context, b);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovGenomeModel, SampleHasRequestedLength) {
  const MarkovGenomeModel model(0.5, 0.3, 22);
  const Genome genome = model.sample("m", 3000, 23);
  EXPECT_EQ(genome.seq.size(), 3000u);
  EXPECT_TRUE(bio::is_valid_dna(genome.seq));
}

TEST(MarkovGenomeModel, GcBiasShowsInSamples) {
  const MarkovGenomeModel rich(0.7, 1.0, 24);
  const MarkovGenomeModel poor(0.3, 1.0, 24);
  EXPECT_GT(rich.sample("r", 20000, 25).gc(), poor.sample("p", 20000, 25).gc());
}

TEST(MarkovGenomeModel, ZeroMixChildMatchesParentComposition) {
  const MarkovGenomeModel parent(0.5, 0.3, 26);
  const MarkovGenomeModel child = parent.derive_child(0.0, 27);
  for (std::size_t context = 0; context < MarkovGenomeModel::kContexts; ++context) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_NEAR(child.probability(context, b), parent.probability(context, b),
                  1e-12);
    }
  }
}

TEST(MarkovGenomeModel, LargerMixDivergesCompositionMore) {
  const MarkovGenomeModel parent(0.5, 0.25, 28);
  const auto jaccard_to_parent = [&](double mix) {
    const MarkovGenomeModel child = parent.derive_child(mix, 29);
    const Genome a = parent.sample("a", 30000, 30);
    const Genome b = child.sample("b", 30000, 31);
    return bio::exact_jaccard(bio::kmer_set(a.seq, {.k = 6}),
                              bio::kmer_set(b.seq, {.k = 6}));
  };
  EXPECT_GT(jaccard_to_parent(0.1), jaccard_to_parent(0.9));
}

TEST(BranchToCompositionMix, MonotoneAndCapped) {
  EXPECT_LT(branch_to_composition_mix(0.02), branch_to_composition_mix(0.2));
  EXPECT_LE(branch_to_composition_mix(1.0), 0.95);
  EXPECT_DOUBLE_EQ(branch_to_composition_mix(0.0), 0.0);
}

}  // namespace
}  // namespace mrmc::simdata

// Benchmark dataset builders reproducing the paper's Tables I and II:
//  * 16S simulated samples (43 reference genes, 3% / 5% read error) —
//    the Huse et al. benchmark of Section IV-A1,
//  * 8 environmental seawater samples (Sogin et al., Table I),
//  * 14 simulated + 1 real whole-metagenome mixtures (Chatterji et al. +
//    sharpshooter gut, Table II).
// Each registry entry carries the paper's published parameters (GC content,
// abundance ratios, read counts, taxonomic separation) and a builder that
// synthesizes an equivalent sample at a configurable scale (see DESIGN.md §2
// for why the substitution preserves the evaluated behaviour).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simdata/genome.hpp"
#include "simdata/marker16s.hpp"
#include "simdata/reads.hpp"

namespace mrmc::simdata {

// ---------------------------------------------------------------- Table II

struct SpeciesSpec {
  std::string name;
  double gc = 0.5;       ///< paper's bracketed GC content
  double branch = 0.05;  ///< divergence from the sample's common ancestor
  int ratio = 1;         ///< abundance ratio component
};

struct WholeMetagenomeSpec {
  std::string sid;                   ///< "S1".."S14", "R1"
  std::vector<SpeciesSpec> species;
  std::string taxonomic_difference;  ///< Table II display string
  std::size_t paper_reads = 0;
  int ground_truth_clusters = -1;    ///< -1 when unknown (R1)
  bool has_ground_truth = true;
};

/// All 15 rows of Table II (S1-S14 plus real sample R1).
const std::vector<WholeMetagenomeSpec>& whole_metagenome_registry();

/// Look up a registry entry by SID; throws InvalidArgument if absent.
const WholeMetagenomeSpec& whole_metagenome_spec(const std::string& sid);

struct WholeMetagenomeOptions {
  std::size_t genome_length = 100'000;  ///< synthetic genome size (paper: Mbp-scale)
  std::size_t reads = 0;                ///< 0 -> paper_reads * scale
  double scale = 0.04;                  ///< fraction of the paper's read count
  std::size_t read_length = 600;        ///< paper: ~1000 bp (scaled for runtime)
  double error_rate = 0.01;             ///< shotgun per-base error
  std::uint64_t seed = 42;
};

/// Build the reads for one Table II sample.  For R1 (no ground truth) the
/// returned labels vector is empty.
LabeledReads build_whole_metagenome(const WholeMetagenomeSpec& spec,
                                    const WholeMetagenomeOptions& options = {});

// ----------------------------------------------------------------- Table I

struct EnvSampleSpec {
  std::string sid;    ///< "53R" ... "FS396"
  std::string site;
  double lat = 0, lon = 0;
  int depth_m = 0;
  double temp_c = 0;
  std::size_t paper_reads = 0;
  std::size_t latent_otus = 0;  ///< latent community richness for the simulator
};

/// All 8 rows of Table I.
const std::vector<EnvSampleSpec>& environmental_registry();
const EnvSampleSpec& environmental_spec(const std::string& sid);

struct Env16sOptions {
  std::size_t reads = 0;          ///< 0 -> paper_reads * scale
  double scale = 1.0 / 60.0;
  double abundance_sigma = 1.2;   ///< log-normal rare-biosphere skew
  double error_rate = 0.005;      ///< 454 amplicon error
  std::size_t read_length = 60;   ///< Table I: average 60 bp
  std::uint64_t seed = 42;
};

/// Build one environmental sample.  Labels are retained (latent OTU of each
/// read) for diagnostics but the paper treats these samples as unlabeled.
LabeledReads build_environmental(const EnvSampleSpec& spec,
                                 const Env16sOptions& options = {});

// ------------------------------------------------- 16S simulated benchmark

struct Sim16sOptions {
  std::size_t genomes = 43;       ///< Huse et al.: 43 known 16S fragments
  std::size_t reads = 1000;       ///< paper: 345,000 (scaled for runtime)
  double error_rate = 0.03;       ///< 0.03 or 0.05 per the two Table IV columns
  std::size_t read_length = 100;  ///< GS20 pyrosequencing read length
  std::uint64_t seed = 42;
};

/// Build the simulated 16S benchmark: reads drawn uniformly from `genomes`
/// reference genes with the given per-base error rate.
LabeledReads build_16s_simulated(const Sim16sOptions& options = {});

}  // namespace mrmc::simdata

#include "core/greedy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mrmc::core {

namespace {

/// Algorithm 1's sweep, parameterized over the pair-similarity callback so
/// the flat-matrix and vector<Sketch> entry points share one control flow
/// (and therefore produce identical labels / comparison counts).
template <typename Similarity>
GreedyResult greedy_sweep(std::size_t n, const GreedyParams& params,
                          Similarity&& similarity) {
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  GreedyResult result;
  result.labels.assign(n, -1);
  if (n == 0) return result;

  // `pending` holds the indices of still-unassigned sequences, in input
  // order; each pass removes the new representative and everything it
  // absorbs (Algorithm 1 lines 5-14).
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  int next_label = 0;
  while (!pending.empty()) {
    const std::size_t rep = pending.front();
    const int label = next_label++;
    result.labels[rep] = label;
    result.representatives.push_back(rep);

    std::vector<std::size_t> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t idx = 1; idx < pending.size(); ++idx) {
      const std::size_t candidate = pending[idx];
      ++result.comparisons;
      if (similarity(rep, candidate) >= params.theta) {
        result.labels[candidate] = label;
      } else {
        still_pending.push_back(candidate);
      }
    }
    pending = std::move(still_pending);
  }

  result.num_clusters = static_cast<std::size_t>(next_label);
  return result;
}

}  // namespace

GreedyResult greedy_cluster(const kernels::SketchMatrix& sketches,
                            const GreedyParams& params) {
  const std::size_t n = sketches.rows();
  if (params.estimator == SketchEstimator::kSetBased) {
    const SortedSketchStore store(sketches);
    return greedy_sweep(n, params, [&](std::size_t i, std::size_t j) {
      return store.jaccard(i, j);
    });
  }
  const auto cols = static_cast<double>(sketches.cols());
  return greedy_sweep(n, params, [&](std::size_t i, std::size_t j) {
    if (sketches.cols() == 0) return 0.0;
    const std::size_t matches =
        kernels::count_equal(sketches.row(i), sketches.row(j));
    return static_cast<double>(matches) / cols;
  });
}

GreedyResult greedy_cluster_graph(const candidates::SparseSimilarityGraph& graph,
                                  const GreedyParams& params) {
  MRMC_REQUIRE(params.theta >= 0.0 && params.theta <= 1.0, "theta in [0, 1]");
  const std::size_t n = graph.num_vertices;
  GreedyResult result;
  result.labels.assign(n, -1);
  if (n == 0) return result;

  // CSR adjacency over both edge directions.  Edges arrive sorted by
  // (a, b) with a < b, so each vertex's neighbor list comes out ascending:
  // smaller neighbors (as edge targets) land before larger ones (as edge
  // sources).
  std::vector<std::size_t> offsets(n + 1, 0);
  for (const auto& edge : graph.edges) {
    MRMC_REQUIRE(edge.a < edge.b && edge.b < n, "graph edge out of range");
    ++offsets[edge.a + 1];
    ++offsets[edge.b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::pair<std::uint32_t, double>> adjacency(offsets[n]);
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& edge : graph.edges) {
      adjacency[cursor[edge.a]++] = {edge.b, edge.similarity};
      adjacency[cursor[edge.b]++] = {edge.a, edge.similarity};
    }
  }

  // Equivalent formulation of Algorithm 1's pending-list sweep: by the time
  // index i is reached every j < i is already assigned (absorbed earlier or
  // a representative itself), so a new representative i only needs to test
  // its *graph neighbors* j > i that are still unassigned.
  int next_label = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.labels[i] >= 0) continue;
    const int label = next_label++;
    result.labels[i] = label;
    result.representatives.push_back(i);
    for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const auto [neighbor, similarity] = adjacency[e];
      if (neighbor < i || result.labels[neighbor] >= 0) continue;
      ++result.comparisons;
      if (similarity >= params.theta) result.labels[neighbor] = label;
    }
  }
  result.num_clusters = static_cast<std::size_t>(next_label);
  return result;
}

GreedyResult greedy_cluster(std::span<const Sketch> sketches,
                            const GreedyParams& params) {
  if (params.estimator == SketchEstimator::kSetBased) {
    // Sorted unique view of each sketch, precomputed so the set-based
    // estimator does not re-sort per comparison.
    const SortedSketchStore store(sketches);
    return greedy_sweep(sketches.size(), params,
                        [&](std::size_t i, std::size_t j) {
                          return store.jaccard(i, j);
                        });
  }
  return greedy_sweep(sketches.size(), params,
                      [&](std::size_t i, std::size_t j) {
                        return component_match_similarity(sketches[i],
                                                          sketches[j]);
                      });
}

}  // namespace mrmc::core

#include "core/candidates.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/kernels.hpp"

namespace mrmc::core::candidates {

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kExactAllPairs: return "exact";
    case Backend::kLshBanded: return "lsh";
  }
  return "?";
}

double lsh_collision_probability(double jaccard, std::size_t bands,
                                 std::size_t rows) noexcept {
  return 1.0 - std::pow(1.0 - std::pow(jaccard, static_cast<double>(rows)),
                        static_cast<double>(bands));
}

double lsh_threshold(std::size_t bands, std::size_t rows) noexcept {
  return std::pow(1.0 / static_cast<double>(bands),
                  1.0 / static_cast<double>(rows));
}

BandShape validated_band_shape(std::size_t sketch_size, std::size_t bands) {
  MRMC_REQUIRE(bands >= 1, "need at least one band");
  MRMC_REQUIRE(sketch_size >= 1, "need a nonempty sketch");
  MRMC_REQUIRE(sketch_size % bands == 0, "bands must divide the sketch length");
  return {bands, sketch_size / bands};
}

BandShape select_band_shape(std::size_t sketch_size, double theta,
                            double target_recall) {
  MRMC_REQUIRE(sketch_size >= 1, "need a nonempty sketch");
  MRMC_REQUIRE(theta >= 0.0 && theta <= 1.0, "theta in [0, 1]");
  MRMC_REQUIRE(target_recall > 0.0 && target_recall <= 1.0,
               "target_recall in (0, 1]");
  // At fixed J the collision probability rises monotonically with the band
  // count (shorter bands match more easily and there are more of them), so
  // scanning bands upward finds the unique cheapest shape that meets the
  // target.
  for (std::size_t bands = 1; bands <= sketch_size; ++bands) {
    if (sketch_size % bands != 0) continue;
    const std::size_t rows = sketch_size / bands;
    if (lsh_collision_probability(theta, bands, rows) >= target_recall) {
      return {bands, rows};
    }
  }
  return {sketch_size, 1};  // most sensitive shape; target unreachable
}

BandShape resolve_band_shape(const Params& params, std::size_t sketch_size,
                             double theta) {
  return params.bands != 0
             ? validated_band_shape(sketch_size, params.bands)
             : select_band_shape(sketch_size, theta, params.target_recall);
}

std::uint64_t band_bucket_key(std::span<const std::uint64_t> sketch,
                              std::size_t band, const BandShape& shape,
                              std::uint64_t seed) noexcept {
  std::uint64_t h = common::mix64(seed ^ (band * 0x9e3779b97f4a7c15ULL));
  for (std::size_t r = band * shape.rows; r < (band + 1) * shape.rows; ++r) {
    h = common::mix64(h ^ sketch[r]);
  }
  return h;
}

LshBucketIndex::LshBucketIndex(std::size_t sketch_size, BandShape shape,
                               std::uint64_t seed)
    : shape_(shape), seed_(seed) {
  MRMC_REQUIRE(shape.bands >= 1 && shape.bands * shape.rows == sketch_size,
               "band shape must tile the sketch length");
  buckets_.resize(shape_.bands);
}

void LshBucketIndex::insert(int id, std::span<const std::uint64_t> sketch) {
  MRMC_REQUIRE(sketch.size() == shape_.bands * shape_.rows,
               "sketch length mismatch");
  for (std::size_t band = 0; band < shape_.bands; ++band) {
    buckets_[band][band_bucket_key(sketch, band, shape_, seed_)].push_back(id);
  }
  ++inserted_;
}

std::vector<int> LshBucketIndex::candidates(
    std::span<const std::uint64_t> sketch) const {
  MRMC_REQUIRE(sketch.size() == shape_.bands * shape_.rows,
               "sketch length mismatch");
  std::vector<int> out;
  for (std::size_t band = 0; band < shape_.bands; ++band) {
    const auto it =
        buckets_[band].find(band_bucket_key(sketch, band, shape_, seed_));
    if (it == buckets_[band].end()) continue;
    for (const int id : it->second) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  return out;
}

namespace {

std::vector<Pair> all_pairs(std::size_t n) {
  std::vector<Pair> pairs;
  if (n < 2) return pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

/// Sort-based batch bucketing: one (key, id) entry per (read, band), sorted
/// so each bucket is a contiguous run.  Memory-lean relative to hash maps
/// at millions of reads, and trivially deterministic.
std::vector<Pair> lsh_pairs(const kernels::SketchMatrix& sketches,
                            const BandShape& shape, std::uint64_t seed,
                            common::ThreadPool* pool) {
  const std::size_t n = sketches.rows();
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries(n * shape.bands);
  auto fill_row = [&](std::size_t i) {
    const auto sketch = sketches.row(i);
    for (std::size_t band = 0; band < shape.bands; ++band) {
      entries[i * shape.bands + band] = {
          band_bucket_key(sketch, band, shape, seed),
          static_cast<std::uint32_t>(i)};
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  std::sort(entries.begin(), entries.end());

  std::vector<Pair> pairs;
  for (std::size_t lo = 0; lo < entries.size();) {
    std::size_t hi = lo + 1;
    while (hi < entries.size() && entries[hi].first == entries[lo].first) ++hi;
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < hi; ++j) {
        // ids ascend within a run (the sort's tiebreak), so a < b holds;
        // equal ids (two bands of one read colliding on the same key) must
        // not become a self-pair.
        if (entries[i].second == entries[j].second) continue;
        pairs.emplace_back(entries[i].second, entries[j].second);
      }
    }
    lo = hi;
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace

std::vector<Pair> enumerate_pairs(const kernels::SketchMatrix& sketches,
                                  const Params& params, double theta,
                                  common::ThreadPool* pool) {
  if (sketches.rows() < 2) return {};
  if (params.backend == Backend::kExactAllPairs) {
    return all_pairs(sketches.rows());
  }
  const BandShape shape = resolve_band_shape(params, sketches.cols(), theta);
  return lsh_pairs(sketches, shape, params.seed, pool);
}

SparseSimilarityGraph verify_pairs(const kernels::SketchMatrix& sketches,
                                   std::span<const Pair> pairs,
                                   SketchEstimator estimator,
                                   common::ThreadPool* pool) {
  SparseSimilarityGraph graph;
  graph.num_vertices = sketches.rows();
  graph.edges.resize(pairs.size());

  const bool set_based = estimator == SketchEstimator::kSetBased;
  const SortedSketchStore store =
      set_based ? SortedSketchStore(sketches) : SortedSketchStore();
  // Multiply-by-reciprocal, exactly as kernels::component_match_matrix does,
  // so exact-backend graphs match the dense matrix to the last bit.
  const double inv_cols =
      sketches.cols() == 0 ? 0.0 : 1.0 / static_cast<double>(sketches.cols());
  auto score = [&](std::size_t p) {
    const auto [a, b] = pairs[p];
    MRMC_REQUIRE(a < b && b < sketches.rows(), "candidate pair out of range");
    double sim = 0.0;
    if (set_based) {
      sim = store.jaccard(a, b);
    } else {
      sim = static_cast<double>(
                kernels::count_equal(sketches.row(a), sketches.row(b))) *
            inv_cols;
    }
    graph.edges[p] = Edge{a, b, sim};
  };
  if (pool != nullptr) {
    pool->parallel_for(pairs.size(), score);
  } else {
    for (std::size_t p = 0; p < pairs.size(); ++p) score(p);
  }
  return graph;
}

SparseSimilarityGraph build_graph(const kernels::SketchMatrix& sketches,
                                  const Params& params, double theta,
                                  SketchEstimator estimator,
                                  common::ThreadPool* pool) {
  const std::vector<Pair> pairs =
      enumerate_pairs(sketches, params, theta, pool);
  return verify_pairs(sketches, pairs, estimator, pool);
}

}  // namespace mrmc::core::candidates

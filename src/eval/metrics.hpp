// Clustering evaluation metrics from Section IV-B of the paper:
//
//  * W.Acc — weighted cluster accuracy: each cluster is designated by its
//    most frequent ground-truth class; accuracy is the fraction of member
//    sequences of that class, averaged over clusters weighted by cluster
//    size.
//  * W.Sim — weighted within-cluster sequence similarity: the average
//    global-alignment identity of sequence pairs inside each cluster,
//    weighted by cluster size.  Exhaustive pair enumeration is quadratic,
//    so pairs are sampled (deterministically) above a configurable budget.
//
// Both metrics can ignore clusters below a minimum size, mirroring the
// paper's "clusters having number of sequences greater than 50" rule.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/alignment.hpp"
#include "bio/fasta.hpp"

namespace mrmc::eval {

/// Sizes of each cluster, indexed by label (labels must be >= 0).
std::vector<std::size_t> cluster_sizes(std::span<const int> labels);

struct AccuracyOptions {
  std::size_t min_cluster_size = 1;
};

/// Weighted cluster accuracy in [0, 1].  `truth[i]` is the ground-truth
/// class of sequence i.  Returns 0 for empty input.
double weighted_cluster_accuracy(std::span<const int> labels,
                                 std::span<const int> truth,
                                 const AccuracyOptions& options = {});

struct SimilarityOptions {
  std::size_t min_cluster_size = 1;
  std::size_t max_pairs_per_cluster = 30;  ///< sampling budget
  bio::AlignParams align{};
  std::uint64_t seed = 99;
  std::size_t threads = 0;  ///< alignment parallelism (0 = hardware)
};

/// Weighted within-cluster global-alignment similarity in [0, 1].
double weighted_similarity(std::span<const int> labels,
                           std::span<const bio::FastaRecord> reads,
                           const SimilarityOptions& options = {});

/// Number of clusters meeting the minimum-size filter.
std::size_t clusters_at_least(std::span<const int> labels, std::size_t min_size);

// ---------------------------------------------------------------- diversity

/// Shannon diversity index H' = -sum p_i ln p_i over cluster abundances.
double shannon_index(std::span<const int> labels);

/// Chao1 richness estimate: S_obs + F1^2 / (2 F2), with the standard
/// bias-corrected form when F2 == 0.
double chao1_richness(std::span<const int> labels);

}  // namespace mrmc::eval

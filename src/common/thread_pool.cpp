#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mrmc::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size() * 4);
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mrmc::common

// Cluster model and deterministic task scheduler.
//
// The paper benchmarks on Amazon Elastic MapReduce (M1 Large: 4 EC2 compute
// units, 7.5 GiB, 850 GB disk) with 2..12 nodes.  We do not have a cluster;
// instead every MapReduce job in this library runs its tasks for real (on a
// thread pool) while *placement and time* are simulated: each task's
// measured work is scheduled onto a configurable set of homogeneous nodes
// with per-node map/reduce slots, startup overheads, disk and network
// bandwidth.  The resulting makespan reproduces the strong-scaling behaviour
// of Figure 2 (see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mr/faults.hpp"
#include "obs/report.hpp"

namespace mrmc::mr {

/// Homogeneous node description, calibrated loosely to an EMR M1 Large.
struct NodeSpec {
  double cpu_rate = 1.0;      ///< work units per simulated second
  double disk_bw = 80e6;      ///< bytes / simulated second, local disk
  double net_bw = 40e6;       ///< bytes / simulated second, NIC
};

struct ClusterConfig {
  std::size_t nodes = 4;
  NodeSpec node{};
  std::size_t map_slots_per_node = 2;
  std::size_t reduce_slots_per_node = 2;
  double task_startup_s = 1.5;  ///< per-task JVM-style launch overhead
  double job_startup_s = 8.0;   ///< job submission + scheduling overhead
  /// Hadoop-style speculative execution: a task whose duration exceeds
  /// `speculation_factor` x the phase median is assumed to get a backup
  /// copy once detected; its effective completion becomes
  /// min(own end, start + (speculation_factor + 1) x median).  Slot
  /// occupancy of backups is not modeled (documented approximation).
  bool speculative_execution = false;
  double speculation_factor = 1.5;

  [[nodiscard]] std::size_t map_slots() const noexcept {
    return nodes * map_slots_per_node;
  }
  [[nodiscard]] std::size_t reduce_slots() const noexcept {
    return nodes * reduce_slots_per_node;
  }
};

/// One task's resource demand, in machine-independent units.
struct TaskSpec {
  double work = 0.0;          ///< CPU work units
  double input_bytes = 0.0;   ///< bytes read (disk if local, network if not)
  double output_bytes = 0.0;  ///< bytes written to local disk
  int preferred_node = -1;    ///< replica holder; -1 = no locality preference
};

/// Scheduling outcome of one task.
struct TaskPlacement {
  int node = 0;
  int slot = 0;  ///< slot index on the node (its trace track)
  double start_s = 0.0;
  double end_s = 0.0;
  bool data_local = true;
};

struct PhaseTimeline {
  std::vector<TaskPlacement> tasks;
  double makespan_s = 0.0;
  std::size_t data_local_tasks = 0;
  std::size_t speculated_tasks = 0;  ///< tasks rescued by a backup copy
};

/// Deterministic list scheduler: tasks are placed longest-first onto the
/// earliest-available slot, honoring locality when the preferred node's
/// slot is not more than one task-startup behind the globally earliest one.
class SimScheduler {
 public:
  explicit SimScheduler(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  /// Schedule one phase (map or reduce) over `slots_per_node` slots/node.
  [[nodiscard]] PhaseTimeline schedule_phase(std::span<const TaskSpec> tasks,
                                             std::size_t slots_per_node) const;

  /// Duration of one task on one node, given locality.
  [[nodiscard]] double task_duration(const TaskSpec& task, bool data_local) const;

  /// All-to-all shuffle of `total_bytes`: every byte crosses the network
  /// except the 1/nodes fraction that stays local; bandwidth is aggregate.
  [[nodiscard]] double shuffle_time(double total_bytes) const;

  /// Time for one reducer to pull one map run: a 1/nodes fraction of the
  /// bytes is on the reducer's own node (disk bandwidth), the rest crosses
  /// one NIC.  The per-fetch twin of the aggregate shuffle_time() model.
  [[nodiscard]] double fetch_time(double bytes) const;

 private:
  ClusterConfig config_;
};

/// One map-output run a reducer must pull (map task -> reducer, in bytes).
struct FetchSpec {
  std::size_t map_task = 0;
  std::size_t reducer = 0;
  double bytes = 0.0;
};

/// A simulated fetch: starts when the producing map task finishes (or when
/// the reducer's previous fetch drains — fetches into one reducer are
/// serialized on its NIC), so the shuffle overlaps the map phase exactly the
/// way the task-graph runtime overlaps the real one.  Times are relative to
/// the map phase start, like TaskPlacement times.
struct FetchPlacement {
  std::size_t map_task = 0;
  std::size_t reducer = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double bytes = 0.0;
};

/// End-to-end simulated time of a two-phase (map, shuffle, reduce) job.
struct JobTimeline {
  PhaseTimeline map_phase;
  double shuffle_s = 0.0;
  PhaseTimeline reduce_phase;
  double total_s = 0.0;
  /// Per-fetch shuffle events (empty when the aggregate model was used).
  std::vector<FetchPlacement> fetches;
  /// Serialized-byte totals summed from the task/fetch specs in index order
  /// (the doctor's "bytes" section; empty() when the specs carried none).
  obs::report::ByteSummary bytes;
  /// Node crashes and the attempts they cost (empty for fault-free runs).
  faults::FaultOutcome faults;

  [[nodiscard]] std::string summary() const;
};

/// `job_name` labels the job's simulated-clock trace tracks and log lines.
/// When the global obs::Tracer is enabled, every TaskPlacement is exported
/// as a duration event on its node/slot track (plus a shuffle track), and
/// the phase/task durations feed the global obs metrics registry.
/// With a non-empty `fetches` stream, the shuffle is modeled per fetch
/// (overlapped with the map phase; `shuffle_s` becomes only the tail that
/// outlives the last map task) instead of as one aggregate transfer.
JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const FetchSpec> fetches,
                         std::span<const TaskSpec> reduce_tasks,
                         const std::string& job_name);

/// Fault-aware twin: schedules the same job under `plan`'s node crashes.
/// Attempts running on a node when it dies are killed and re-queued once the
/// heartbeat timeout detects the crash; *completed* map attempts whose node
/// dies before every reducer has fetched their output are invalidated and
/// the map re-executes (Hadoop's fetch-failure path); a node crashing more
/// than `plan.config().max_node_failures` times is blacklisted and never
/// scheduled again.  Speculative execution is disabled under faults (a
/// backup copy's slot occupancy would interact with kills; documented in
/// DESIGN.md).  With an empty plan this is exactly the fault-free overload.
JobTimeline simulate_job(const SimScheduler& scheduler,
                         std::span<const TaskSpec> map_tasks,
                         double shuffle_bytes,
                         std::span<const FetchSpec> fetches,
                         std::span<const TaskSpec> reduce_tasks,
                         const std::string& job_name,
                         const faults::FaultPlan& plan);

inline JobTimeline simulate_job(const SimScheduler& scheduler,
                                std::span<const TaskSpec> map_tasks,
                                double shuffle_bytes,
                                std::span<const TaskSpec> reduce_tasks,
                                const std::string& job_name) {
  return simulate_job(scheduler, map_tasks, shuffle_bytes, {}, reduce_tasks,
                      job_name);
}

inline JobTimeline simulate_job(const SimScheduler& scheduler,
                                std::span<const TaskSpec> map_tasks,
                                double shuffle_bytes,
                                std::span<const TaskSpec> reduce_tasks) {
  return simulate_job(scheduler, map_tasks, shuffle_bytes, reduce_tasks,
                      "job");
}

/// Convert a finished timeline into the job doctor's input (the in-process
/// twin of obs::report::jobs_from_trace): tasks keep their phase-index order
/// so both ingestion paths feed analyze() identically.
[[nodiscard]] obs::report::JobInput report_input(const JobTimeline& timeline,
                                                 const ClusterConfig& config,
                                                 std::string job_name,
                                                 double shuffle_bytes = 0.0);

}  // namespace mrmc::mr

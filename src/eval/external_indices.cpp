#include "eval/external_indices.hpp"

#include <cmath>
#include <map>

#include "common/error.hpp"

namespace mrmc::eval {

namespace {

/// Contingency table between two labelings plus the marginals.
struct Contingency {
  std::map<std::pair<int, int>, std::size_t> cells;
  std::map<int, std::size_t> row_sums;   // per predicted cluster
  std::map<int, std::size_t> col_sums;   // per truth class
  std::size_t total = 0;
};

Contingency build_contingency(std::span<const int> labels,
                              std::span<const int> truth) {
  MRMC_REQUIRE(labels.size() == truth.size(), "labelings must align");
  Contingency table;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ++table.cells[{labels[i], truth[i]}];
    ++table.row_sums[labels[i]];
    ++table.col_sums[truth[i]];
  }
  table.total = labels.size();
  return table;
}

constexpr double choose2(double n) noexcept { return n * (n - 1.0) / 2.0; }

}  // namespace

double purity(std::span<const int> labels, std::span<const int> truth) {
  if (labels.empty()) return 0.0;
  const Contingency table = build_contingency(labels, truth);
  std::map<int, std::size_t> majority;
  for (const auto& [cell, count] : table.cells) {
    auto& best = majority[cell.first];
    best = std::max(best, count);
  }
  std::size_t correct = 0;
  for (const auto& [cluster, count] : majority) correct += count;
  return static_cast<double>(correct) / static_cast<double>(table.total);
}

double pairwise_f_measure(std::span<const int> labels, std::span<const int> truth) {
  if (labels.empty()) return 0.0;
  const Contingency table = build_contingency(labels, truth);

  double together_both = 0;  // pairs co-clustered in both partitions
  for (const auto& [cell, count] : table.cells) {
    together_both += choose2(static_cast<double>(count));
  }
  double together_pred = 0;
  for (const auto& [cluster, count] : table.row_sums) {
    together_pred += choose2(static_cast<double>(count));
  }
  double together_true = 0;
  for (const auto& [cls, count] : table.col_sums) {
    together_true += choose2(static_cast<double>(count));
  }
  if (together_pred == 0.0 || together_true == 0.0) return 0.0;
  const double precision = together_both / together_pred;
  const double recall = together_both / together_true;
  return precision + recall == 0.0
             ? 0.0
             : 2.0 * precision * recall / (precision + recall);
}

double normalized_mutual_information(std::span<const int> labels,
                                     std::span<const int> truth) {
  if (labels.empty()) return 0.0;
  const Contingency table = build_contingency(labels, truth);
  const auto n = static_cast<double>(table.total);

  double mutual = 0.0;
  for (const auto& [cell, count] : table.cells) {
    const double joint = static_cast<double>(count) / n;
    const double p_row = static_cast<double>(table.row_sums.at(cell.first)) / n;
    const double p_col = static_cast<double>(table.col_sums.at(cell.second)) / n;
    mutual += joint * std::log(joint / (p_row * p_col));
  }
  auto entropy = [n](const std::map<int, std::size_t>& marginal) {
    double h = 0.0;
    for (const auto& [key, count] : marginal) {
      const double p = static_cast<double>(count) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double h_labels = entropy(table.row_sums);
  const double h_truth = entropy(table.col_sums);
  if (h_labels == 0.0 || h_truth == 0.0) return 0.0;
  return mutual / std::sqrt(h_labels * h_truth);
}

double adjusted_rand_index(std::span<const int> labels, std::span<const int> truth) {
  if (labels.empty()) return 0.0;
  const Contingency table = build_contingency(labels, truth);

  double sum_cells = 0;
  for (const auto& [cell, count] : table.cells) {
    sum_cells += choose2(static_cast<double>(count));
  }
  double sum_rows = 0;
  for (const auto& [cluster, count] : table.row_sums) {
    sum_rows += choose2(static_cast<double>(count));
  }
  double sum_cols = 0;
  for (const auto& [cls, count] : table.col_sums) {
    sum_cols += choose2(static_cast<double>(count));
  }
  const double pairs = choose2(static_cast<double>(table.total));
  if (pairs == 0.0) return 1.0;
  const double expected = sum_rows * sum_cols / pairs;
  const double maximum = 0.5 * (sum_rows + sum_cols);
  if (maximum == expected) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / (maximum - expected);
}

std::vector<double> rarefaction_curve(std::span<const int> labels,
                                      std::size_t steps) {
  MRMC_REQUIRE(steps >= 1, "need at least one rarefaction point");
  std::vector<double> curve;
  if (labels.empty()) return curve;

  std::map<int, std::size_t> sizes;
  for (const int label : labels) ++sizes[label];
  const auto n = static_cast<double>(labels.size());

  curve.reserve(steps);
  for (std::size_t step = 1; step <= steps; ++step) {
    const double subsample = n * static_cast<double>(step) /
                             static_cast<double>(steps);
    // E[#clusters seen] = sum over clusters of 1 - P(cluster missed).
    // P(missed) under without-replacement sampling approximated by the
    // standard hypergeometric product, computed in log space.
    double expected = 0.0;
    for (const auto& [label, size] : sizes) {
      // log P(none of `size` members among `subsample` draws)
      double log_miss = 0.0;
      const auto s = static_cast<double>(size);
      bool impossible = false;
      if (n - s < subsample) {
        impossible = true;  // subsample larger than the complement
      } else {
        for (double d = 0; d < subsample; ++d) {
          log_miss += std::log((n - s - d) / (n - d));
        }
      }
      expected += impossible ? 1.0 : 1.0 - std::exp(log_miss);
    }
    curve.push_back(expected);
  }
  return curve;
}

}  // namespace mrmc::eval

#include "core/candidate_jobs.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"

namespace mrmc::core {

namespace {

mr::JobConfig job_config(const char* name, const ExecutionOptions& exec,
                         std::size_t records_per_split) {
  mr::JobConfig config;
  config.name = name;
  config.num_reducers = std::max<std::size_t>(1, exec.cluster.reduce_slots());
  config.records_per_split = records_per_split;
  detail::apply_exec_options(config, exec);
  return config;
}

}  // namespace

CandidateJobResult run_candidate_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    const candidates::Params& params, double theta,
    const ExecutionOptions& exec) {
  CandidateJobResult result;
  const std::size_t n = sketches->size();
  if (n < 2) return result;

  if (params.backend == candidates::Backend::kExactAllPairs) {
    result.pairs.reserve(n * (n - 1) / 2);
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) result.pairs.emplace_back(i, j);
    }
    return result;
  }

  obs::pipeline::StageScope stage("candidates");
  const std::size_t sketch_size = sketches->front().size();
  const candidates::BandShape shape =
      candidates::resolve_band_shape(params, sketch_size, theta);
  result.shape = shape;
  const std::uint64_t seed = params.seed;

  using BandJob = mr::Job<std::uint32_t, std::uint64_t, std::uint32_t,
                          candidates::Pair>;
  auto config = job_config("candidates", exec, exec.records_per_split);

  auto& bucket_hist =
      obs::Registry::global().histogram("pipeline.candidate_bucket_size");
  BandJob job(
      config,
      [sketches, shape, seed](const std::uint32_t& id,
                              mr::Emitter<std::uint64_t, std::uint32_t>& emit) {
        const Sketch& sketch = (*sketches)[id];
        MRMC_CHECK(sketch.size() == shape.bands * shape.rows,
                   "sketch length mismatch");
        for (std::size_t band = 0; band < shape.bands; ++band) {
          emit.emit(candidates::band_bucket_key(sketch, band, shape, seed), id);
        }
        emit.count("candidates.band_entries",
                   static_cast<long>(shape.bands));
      },
      [&bucket_hist](const std::uint64_t&, std::vector<std::uint32_t>& ids,
                     std::vector<candidates::Pair>& out,
                     mr::ReduceContext& context) {
        bucket_hist.observe(static_cast<double>(ids.size()));
        if (ids.size() < 2) return;
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
          for (std::size_t j = i + 1; j < ids.size(); ++j) {
            out.emplace_back(ids[i], ids[j]);
          }
        }
        context.count("candidates.bucket_pairs",
                      static_cast<long>(ids.size() * (ids.size() - 1) / 2));
      });
  job.with_map_work([sketch_size](const std::uint32_t&) {
    return cost::compare_work(sketch_size);  // one mix per component
  });
  job.with_reduce_work([](const std::uint64_t&, std::size_t count) {
    const auto m = static_cast<double>(count);
    return m * 20e-9 + m * (m - 1.0) * 1e-9;  // sort + pair emission
  });

  std::vector<std::uint32_t> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<std::uint32_t>(i);
  auto run = job.run(input);
  result.stats = std::move(run.stats);

  // Cross-bucket dedup happens driver-side: the same pair may surface from
  // several bands (and reducers), so sort + unique fixes one canonical,
  // order-independent candidate set.
  result.pairs = std::move(run.output);
  std::sort(result.pairs.begin(), result.pairs.end());
  result.pairs.erase(std::unique(result.pairs.begin(), result.pairs.end()),
                     result.pairs.end());
  return result;
}

VerifyJobResult run_verify_job(
    std::shared_ptr<const std::vector<Sketch>> sketches,
    std::vector<candidates::Pair> pairs, SketchEstimator estimator,
    const ExecutionOptions& exec) {
  VerifyJobResult result;
  result.graph.num_vertices = sketches->size();
  if (pairs.empty()) return result;

  obs::pipeline::StageScope stage("verify");
  const std::size_t num_hashes = sketches->front().size();

  // Shared read-only scoring structures, built once and visible to every
  // map task (the sketch table plays Pig's GROUP-ALL broadcast relation).
  const bool set_based = estimator == SketchEstimator::kSetBased;
  auto store = set_based ? std::make_shared<const SortedSketchStore>(*sketches)
                         : nullptr;
  auto matrix = set_based
                    ? nullptr
                    : std::make_shared<const kernels::SketchMatrix>(
                          kernels::SketchMatrix::from_sketches(*sketches));
  const double inv_cols =
      num_hashes == 0 ? 0.0 : 1.0 / static_cast<double>(num_hashes);

  using Key = std::uint64_t;  // (a << 32) | b — orders exactly like (a, b)
  using VerifyJob = mr::Job<candidates::Pair, Key, double, candidates::Edge>;
  const std::size_t per_split = std::max<std::size_t>(
      exec.records_per_split,
      pairs.size() / std::max<std::size_t>(1, exec.cluster.map_slots() * 4));
  auto config = job_config("verify", exec, per_split);

  VerifyJob job(
      config,
      [store, matrix, set_based, inv_cols](const candidates::Pair& pair,
                                           mr::Emitter<Key, double>& emit) {
        const auto [a, b] = pair;
        double sim = 0.0;
        if (set_based) {
          sim = store->jaccard(a, b);
        } else if (matrix->cols() != 0) {
          sim = static_cast<double>(
                    kernels::count_equal(matrix->row(a), matrix->row(b))) *
                inv_cols;
        }
        emit.emit((static_cast<Key>(a) << 32) | b, sim);
        emit.count("verify.pairs_scored");
      },
      [](const Key& key, std::vector<double>& values,
         std::vector<candidates::Edge>& out) {
        MRMC_CHECK(values.size() == 1, "one similarity per candidate pair");
        out.push_back(candidates::Edge{static_cast<std::uint32_t>(key >> 32),
                                       static_cast<std::uint32_t>(key),
                                       values.front()});
      });
  job.with_map_work([num_hashes](const candidates::Pair&) {
    return cost::compare_work(num_hashes);
  });

  auto run = job.run(pairs);
  result.stats = std::move(run.stats);

  // Reducers are hash-partitioned, so concatenated output is not globally
  // ordered; one sort restores the canonical (a, b) edge order.
  result.graph.edges = std::move(run.output);
  std::sort(result.graph.edges.begin(), result.graph.edges.end(),
            [](const candidates::Edge& x, const candidates::Edge& y) {
              return std::pair(x.a, x.b) < std::pair(y.a, y.b);
            });
  return result;
}

}  // namespace mrmc::core

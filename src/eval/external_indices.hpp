// Standard external clustering indices complementing the paper's W.Acc:
// purity, F-measure, normalized mutual information (NMI), adjusted Rand
// index (ARI), and rarefaction curves for diversity analysis.  These are
// the metrics later minhash-clustering papers report, so the bench
// harnesses can be extended beyond the paper's own columns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mrmc::eval {

/// Fraction of sequences assigned to their cluster's majority class
/// (unweighted overall purity; equals W.Acc with min_cluster_size = 1).
double purity(std::span<const int> labels, std::span<const int> truth);

/// Pairwise F-measure: harmonic mean of pair precision and recall, where a
/// "positive" is a sequence pair placed in the same cluster.
double pairwise_f_measure(std::span<const int> labels, std::span<const int> truth);

/// Normalized mutual information: I(labels; truth) / sqrt(H(labels) H(truth)),
/// in [0, 1]; 0 when either partition carries no information.
double normalized_mutual_information(std::span<const int> labels,
                                     std::span<const int> truth);

/// Adjusted Rand index (Hubert & Arabie); 1 = identical partitions,
/// ~0 = random agreement, can be negative.
double adjusted_rand_index(std::span<const int> labels, std::span<const int> truth);

/// Expected number of distinct clusters observed in a uniform random
/// subsample of `subsample` sequences (analytic rarefaction).  Points for
/// `steps` evenly spaced subsample sizes up to labels.size().
std::vector<double> rarefaction_curve(std::span<const int> labels,
                                      std::size_t steps = 10);

}  // namespace mrmc::eval

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/mini_json.hpp"

namespace mrmc::obs {
namespace {

using mrmc::common::JsonValue;
using mrmc::common::parse_json;

/// Drives the process-global tracer (its constructor is private) and leaves
/// it disabled and empty for whichever test runs next.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, SpanBecomesCompleteEventWithPostHocArgs) {
  auto& tracer = Tracer::global();
  {
    Tracer::Span span(tracer, "work", {{"phase", "map"}});
    span.arg("result", "ok");
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& event = events[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.phase, 'X');
  EXPECT_EQ(event.category, "real");
  EXPECT_EQ(event.pid, kRealPid);
  EXPECT_GE(event.dur_us, 0.0);
  EXPECT_EQ(event.arg("phase"), "map");
  EXPECT_EQ(event.arg("result"), "ok");
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  auto& tracer = Tracer::global();
  tracer.set_enabled(false);
  {
    Tracer::Span span(tracer, "ignored");
  }
  tracer.instant("also ignored");
  EXPECT_EQ(tracer.size(), 0u);
}

TEST_F(TraceTest, SimJobAllocatesPidAndProcessName) {
  auto& tracer = Tracer::global();
  const std::uint32_t pid_a = tracer.begin_sim_job("sketch");
  const std::uint32_t pid_b = tracer.begin_sim_job("cluster");
  EXPECT_GE(pid_a, kRealPid + 1);
  EXPECT_EQ(pid_b, pid_a + 1);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'M');
  EXPECT_EQ(events[0].name, "process_name");
  EXPECT_EQ(events[0].pid, pid_a);
  EXPECT_EQ(events[0].arg("name"), "sim: sketch");
  EXPECT_EQ(events[1].arg("name"), "sim: cluster");
}

TEST_F(TraceTest, SimTaskCarriesRoundTrippableEndpoints) {
  auto& tracer = Tracer::global();
  const std::uint32_t pid = tracer.begin_sim_job("j");
  const double start = 1.0 / 3.0;   // not representable in decimal
  const double end = 10.0 / 7.0;
  tracer.sim_task(pid, 3, "map 0", start, end, {{"phase", "map"}},
                  /*ts_offset_s=*/8.0);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);  // metadata + task
  const TraceEvent& task = events[1];
  EXPECT_EQ(task.category, "sim");
  EXPECT_EQ(task.pid, pid);
  EXPECT_EQ(task.tid, 3u);
  EXPECT_NEAR(task.ts_us, (8.0 + start) * 1e6, 1e-3);
  EXPECT_NEAR(task.dur_us, (end - start) * 1e6, 1e-3);
  // The %.17g args reconstruct the scheduler's doubles bit-for-bit.
  EXPECT_EQ(std::strtod(std::string(task.arg("start_s")).c_str(), nullptr),
            start);
  EXPECT_EQ(std::strtod(std::string(task.arg("end_s")).c_str(), nullptr), end);
  EXPECT_EQ(task.arg("phase"), "map");
}

TEST_F(TraceTest, SimTrackNamesAreDeduplicated) {
  auto& tracer = Tracer::global();
  const std::uint32_t pid = tracer.begin_sim_job("j");
  tracer.name_sim_track(pid, 0, "node 0 map slot 0");
  tracer.name_sim_track(pid, 0, "node 0 map slot 0");
  tracer.name_sim_track(pid, 1, "node 0 map slot 1");

  std::size_t thread_names = 0;
  for (const TraceEvent& event : tracer.events()) {
    if (event.name == "thread_name") ++thread_names;
  }
  EXPECT_EQ(thread_names, 2u);
}

TEST_F(TraceTest, WriteChromeTraceIsValidJson) {
  auto& tracer = Tracer::global();
  {
    Tracer::Span span(tracer, "tricky \"name\"\nwith newline");
  }
  tracer.instant("marker", {{"k", "v"}});
  const std::uint32_t pid = tracer.begin_sim_job("job \\ with backslash");
  tracer.sim_task(pid, 0, "task", 0.5, 1.5);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue root = parse_json(out.str());

  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  const JsonValue& trace_events = root.at("traceEvents");
  ASSERT_EQ(trace_events.type, JsonValue::Type::kArray);
  ASSERT_EQ(trace_events.array.size(), tracer.size());

  bool saw_tricky = false, saw_sim = false;
  for (const JsonValue& event : trace_events.array) {
    EXPECT_TRUE(event.has("name"));
    EXPECT_TRUE(event.has("ph"));
    EXPECT_TRUE(event.has("pid"));
    if (event.at("name").string == "tricky \"name\"\nwith newline") {
      saw_tricky = true;  // escaping survived the JSON round trip
      EXPECT_EQ(event.at("ph").string, "X");
      EXPECT_TRUE(event.has("ts"));
      EXPECT_TRUE(event.has("dur"));
    }
    if (event.at("name").string == "task") {
      saw_sim = true;
      EXPECT_EQ(event.at("cat").string, "sim");
      EXPECT_DOUBLE_EQ(event.at("dur").number, 1e6);
      EXPECT_EQ(std::strtod(event.at("args").at("start_s").string.c_str(),
                            nullptr),
                0.5);
    }
  }
  EXPECT_TRUE(saw_tricky);
  EXPECT_TRUE(saw_sim);
}

TEST_F(TraceTest, ClearRestartsSimPids) {
  auto& tracer = Tracer::global();
  const std::uint32_t first = tracer.begin_sim_job("a");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.begin_sim_job("b"), first);
}

TEST(TraceDouble, RendersRoundTrippably) {
  for (const double value : {1.0 / 3.0, 1e-300, 12345.6789, 0.0}) {
    const std::string text = trace_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

}  // namespace
}  // namespace mrmc::obs

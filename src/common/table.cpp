#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace mrmc::common {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MRMC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MRMC_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_f(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt_f(fraction * 100.0, decimals);
}

}  // namespace mrmc::common

// Umbrella header for the MrMC-MinH library.
//
//   #include "core/mrmc.hpp"
//
//   auto reads = mrmc::bio::read_fasta_file("sample.fa");
//   mrmc::core::PipelineParams params;
//   params.minhash = {.kmer = 5, .num_hashes = 100, .seed = 1};
//   params.mode = mrmc::core::Mode::kHierarchical;
//   params.theta = 0.9;
//   auto result = mrmc::core::run_pipeline(reads, params);
//   // result.labels[i] is the cluster of reads[i]
//
// See README.md for the full tour and examples/ for runnable programs.
#pragma once

#include "bio/alignment.hpp"
#include "bio/dna.hpp"
#include "bio/fasta.hpp"
#include "bio/fastq.hpp"
#include "bio/gotoh.hpp"
#include "bio/kmer.hpp"
#include "bio/seq_stats.hpp"
#include "core/candidate_jobs.hpp"
#include "core/candidates.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "core/incremental.hpp"
#include "core/lsh_index.hpp"
#include "core/minhash.hpp"
#include "core/otu_table.hpp"
#include "core/pipeline.hpp"
#include "mr/cluster.hpp"
#include "mr/job.hpp"
#include "mr/input_format.hpp"
#include "mr/simdfs.hpp"

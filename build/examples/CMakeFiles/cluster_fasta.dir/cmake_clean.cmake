file(REMOVE_RECURSE
  "CMakeFiles/cluster_fasta.dir/cluster_fasta.cpp.o"
  "CMakeFiles/cluster_fasta.dir/cluster_fasta.cpp.o.d"
  "cluster_fasta"
  "cluster_fasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

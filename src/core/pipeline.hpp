// End-to-end MrMC-MinH pipeline (Figure 1 of the paper): FASTA records ->
// integer encoding -> k-mer feature sets -> minwise sketches -> pair
// enumeration (core::candidates) -> greedy or agglomerative hierarchical
// clustering, with each stage runnable either locally or as a MapReduce job
// on the simulated cluster.  The job sequence depends on the candidate
// backend (PipelineParams::candidates):
//
//   "sketch"       map: read -> (read_index, sketch)        [always; map-heavy]
//   -- exact all-pairs backend (the paper's shape, the default) --
//   "similarity"   map: row  -> (row, sims[row+1..N))       [hierarchical only;
//                   the paper's row-wise partition of the matrix]
//   -- LSH-banded backend --
//   "candidates"   map: (read, sketch) -> per-band (bucket_key, read);
//                   GROUP on bucket; reduce emits candidate pairs
//   "verify"       map: (a, b) -> ((a, b), kernel-scored similarity)
//                   -> sparse similarity graph
//   -- either backend --
//   "…-cluster"    GROUP ALL -> single reducer runs Algorithm 1 (greedy,
//                   graph-aware under LSH) or the dendrogram build + θ-cut
//                   (Algorithm 3, steps 6-9)
//
// Simulated job timelines accumulate into PipelineResult::sim_total_s, the
// number the paper's Table III/V "Time" columns report.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/fastq.hpp"
#include "core/candidates.hpp"
#include "core/greedy.hpp"
#include "core/hierarchical.hpp"
#include "mr/job.hpp"
#include "mr/recovery.hpp"

namespace mrmc::core {

enum class Mode { kGreedy, kHierarchical };

[[nodiscard]] const char* mode_name(Mode mode) noexcept;

struct PipelineParams {
  MinHashParams minhash{};
  Mode mode = Mode::kHierarchical;
  double theta = 0.9;
  Linkage linkage = Linkage::kAverage;          ///< hierarchical only
  SketchEstimator estimator = SketchEstimator::kComponentMatch;
  SketchEstimator greedy_estimator = SketchEstimator::kSetBased;
  /// Pair-enumeration backend.  The exact default keeps the paper's job
  /// shapes (and bit-for-bit outputs); kLshBanded swaps in the
  /// candidates + verify jobs and sparse-graph clustering.
  candidates::Params candidates{};
  /// b-bit sketches: keep only the low `sketch_bits` of every minwise value
  /// (∈ {1, 2, 4, 8, 16, 32, 64}).  64 (default) is today's full-width
  /// behaviour, byte for byte.  Below 64, sketch shuffle blocks pack
  /// 64/b-fold denser and every estimate is thresholded with the standard
  /// b-bit chance-collision correction (see bbit_adjusted_threshold);
  /// estimators are forced to component-match (set semantics over truncated
  /// values are not meaningful).  Local and distributed runs stay
  /// label-identical at any b.
  std::size_t sketch_bits = 64;
};

struct ExecutionOptions {
  bool distributed = true;       ///< stage the pipeline as MapReduce jobs
  mr::ClusterConfig cluster{};
  /// Real execution threads.  0 = the lazily-created process-wide pool
  /// shared by all jobs (mr::runtime::shared_pool()); > 0 = a private pool.
  std::size_t threads = 0;
  /// Escape hatch: force a private (hardware-sized) pool even when
  /// `threads == 0`, e.g. to keep a latency-sensitive host isolated.
  bool isolated_pool = false;
  std::size_t records_per_split = 512;
  /// Node-failure schedule applied to every job in the pipeline (empty =
  /// fault-free).  The clustering output is byte-identical either way; only
  /// the simulated timelines pay for the lost work.
  mr::faults::FaultPlan fault_plan{};
  /// Heartbeat-detection interval override for the fault plan (forwarded to
  /// every JobConfig); 0 = keep the plan's own FaultConfig value.
  double heartbeat_interval_s = 0.0;
  /// Driver-level retry policy around every stage's job (see
  /// mr::recovery::RetryPolicy / JobConfig): attempts per job, per-attempt
  /// wall deadline, exponential-backoff shape.  Exhaustion throws
  /// mr::recovery::RetryExhausted with the attempt history.
  int max_job_attempts = 1;
  double job_timeout_s = 0.0;
  double backoff_base_s = 0.5;
  double backoff_cap_s = 30.0;
  /// Durable stage checkpoints (mr::recovery): directory for checkpoint
  /// files; "" falls back to MRMC_CHECKPOINT_DIR (unset = disabled).  With
  /// checkpoints on, a restarted run serves completed stages from disk and
  /// produces byte-identical labels; note sim/job stats of checkpoint-hit
  /// stages stay empty (their jobs never ran), so sim_total_s covers only
  /// the stages computed in *this* process.
  std::string checkpoint_dir;
  /// Graceful degradation: when the LshBanded candidates stage exhausts its
  /// retry budget and the input has at most this many reads, rerun pair
  /// enumeration with the ExactAllPairs backend instead of failing the
  /// pipeline.  0 disables the fallback.
  std::size_t lsh_fallback_max_reads = 20000;
};

struct PipelineResult {
  std::vector<int> labels;
  std::size_t num_clusters = 0;
  double wall_s = 0.0;       ///< real elapsed time of this process
  double sim_total_s = 0.0;  ///< simulated cluster time across all jobs
  mr::JobStats sketch_stats;
  mr::JobStats similarity_stats;  ///< hierarchical mode, exact backend only
  mr::JobStats candidate_stats;   ///< LSH backend only
  mr::JobStats verify_stats;      ///< LSH backend only
  mr::JobStats cluster_stats;
  std::size_t candidate_pairs = 0;  ///< scored pairs (LSH backend only)
  /// What the recovery stage driver did: checkpoint hits/misses/writes,
  /// retries, fallbacks (distributed path only; all-zero otherwise).
  mr::recovery::RecoveryStats recovery;
};

/// Cluster reads end to end.
PipelineResult run_pipeline(std::span<const bio::FastaRecord> reads,
                            const PipelineParams& params,
                            const ExecutionOptions& exec = {});

/// Raw-sequencer entry point: quality-filter FASTQ reads (3'-trim + length +
/// mean-error filters), then cluster the survivors.  `result.labels` aligns
/// with the *returned* `kept` reads; `dropped` counts QC discards.
struct FastqPipelineResult {
  PipelineResult clustering;
  std::vector<bio::FastaRecord> kept;  ///< post-QC reads, label-aligned
  std::size_t dropped = 0;
};

FastqPipelineResult run_pipeline_fastq(std::span<const bio::FastqRecord> reads,
                                       const bio::QualityFilter& qc,
                                       const PipelineParams& params,
                                       const ExecutionOptions& exec = {});

namespace detail {
/// Copy the execution knobs every pipeline job shares — threads, cluster,
/// fault plan, heartbeat override, retry policy — onto a JobConfig.  Used
/// by the pipeline's job builders and the candidate/verify jobs so a new
/// ExecutionOptions knob cannot silently miss a stage.
void apply_exec_options(mr::JobConfig& config, const ExecutionOptions& exec);
}  // namespace detail

/// Deterministic work models (simulated seconds on a reference node) used by
/// the pipeline's jobs and by the Figure-2 analytic scalability bench.
namespace cost {
/// Sketching one read of `length` bases with `num_hashes` hash functions.
double sketch_work(std::size_t length, std::size_t num_hashes) noexcept;
/// Comparing two sketches of `num_hashes` components.
double compare_work(std::size_t num_hashes) noexcept;
/// Building + cutting a dendrogram over n sequences.
double dendrogram_work(std::size_t n) noexcept;
/// Serialized bytes of one sketch.
double sketch_bytes(std::size_t num_hashes) noexcept;
/// Exact packed payload bytes of one b-bit sketch column in a BinaryBlock:
/// ceil(num_hashes · bits / 64) words of 8 bytes.
double packed_sketch_bytes(std::size_t num_hashes, std::size_t bits) noexcept;
}  // namespace cost

}  // namespace mrmc::core

#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace mrmc::eval {
namespace {

bio::FastaRecord read(std::string id, std::string seq) {
  return {std::move(id), "", std::move(seq)};
}

// ------------------------------------------------------------ cluster_sizes

TEST(ClusterSizes, CountsPerLabel) {
  EXPECT_EQ(cluster_sizes(std::vector<int>{0, 1, 1, 2, 1}),
            (std::vector<std::size_t>{1, 3, 1}));
  EXPECT_TRUE(cluster_sizes(std::vector<int>{}).empty());
}

TEST(ClusterSizes, RejectsNegativeLabels) {
  EXPECT_THROW(cluster_sizes(std::vector<int>{0, -1}), common::InvalidArgument);
}

// ------------------------------------------------- weighted_cluster_accuracy

TEST(WeightedClusterAccuracy, PerfectClustering) {
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<int> truth{5, 5, 9, 9};
  EXPECT_DOUBLE_EQ(weighted_cluster_accuracy(labels, truth), 1.0);
}

TEST(WeightedClusterAccuracy, AllMerged) {
  // One cluster, half class 0 half class 1: majority rule gives 0.5.
  const std::vector<int> labels{0, 0, 0, 0};
  const std::vector<int> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(weighted_cluster_accuracy(labels, truth), 0.5);
}

TEST(WeightedClusterAccuracy, WeightsByClusterSize) {
  // Cluster 0: 4 members, purity 1.0.  Cluster 1: 2 members, purity 0.5.
  // Weighted: (4*1 + 2*0.5) / 6 = 5/6.
  const std::vector<int> labels{0, 0, 0, 0, 1, 1};
  const std::vector<int> truth{7, 7, 7, 7, 8, 9};
  EXPECT_NEAR(weighted_cluster_accuracy(labels, truth), 5.0 / 6.0, 1e-12);
}

TEST(WeightedClusterAccuracy, MinClusterSizeFiltersSmallClusters) {
  // The impure cluster has 2 members; filtering at 3 leaves only the pure one.
  const std::vector<int> labels{0, 0, 0, 1, 1};
  const std::vector<int> truth{7, 7, 7, 8, 9};
  EXPECT_LT(weighted_cluster_accuracy(labels, truth), 1.0);
  EXPECT_DOUBLE_EQ(
      weighted_cluster_accuracy(labels, truth, {.min_cluster_size = 3}), 1.0);
}

TEST(WeightedClusterAccuracy, EmptyInputsAndMismatches) {
  EXPECT_DOUBLE_EQ(weighted_cluster_accuracy({}, {}), 0.0);
  EXPECT_THROW(
      weighted_cluster_accuracy(std::vector<int>{0}, std::vector<int>{}),
      common::InvalidArgument);
}

TEST(WeightedClusterAccuracy, SingletonsScorePerfect) {
  // Every sequence its own cluster: trivially pure (the known degenerate
  // case the paper's cluster-count column guards against).
  const std::vector<int> labels{0, 1, 2, 3};
  const std::vector<int> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(weighted_cluster_accuracy(labels, truth), 1.0);
}

// -------------------------------------------------------- weighted_similarity

TEST(WeightedSimilarity, IdenticalSequencesScoreOne) {
  const std::vector<bio::FastaRecord> reads{
      read("a", "ACGTACGT"), read("b", "ACGTACGT"), read("c", "ACGTACGT")};
  const std::vector<int> labels{0, 0, 0};
  EXPECT_DOUBLE_EQ(weighted_similarity(labels, reads), 1.0);
}

TEST(WeightedSimilarity, SingletonClustersContributeNothing) {
  const std::vector<bio::FastaRecord> reads{read("a", "ACGT"), read("b", "TTTT")};
  const std::vector<int> labels{0, 1};
  EXPECT_DOUBLE_EQ(weighted_similarity(labels, reads), 0.0);
}

TEST(WeightedSimilarity, MixedClusterScoresBetween) {
  const std::vector<bio::FastaRecord> reads{
      read("a", "ACGTACGTGGCC"), read("b", "ACGTACGTGGCC"),
      read("c", "ACGTACGAGGCC")};  // one substitution vs a/b
  const std::vector<int> labels{0, 0, 0};
  const double sim = weighted_similarity(labels, reads);
  EXPECT_GT(sim, 0.9);
  EXPECT_LT(sim, 1.0);
}

TEST(WeightedSimilarity, WeightsLargerClustersMore) {
  // Big identical cluster (4 reads, sim 1) + small dissimilar pair.
  const std::vector<bio::FastaRecord> reads{
      read("a", "ACGTACGTACGT"), read("b", "ACGTACGTACGT"),
      read("c", "ACGTACGTACGT"), read("d", "ACGTACGTACGT"),
      read("e", "AAAAAAAAAAAA"), read("f", "TTTTTTTTTTTT")};
  const std::vector<int> labels{0, 0, 0, 0, 1, 1};
  const double sim = weighted_similarity(labels, reads);
  // (4*1 + 2*0) / 6 = 2/3.
  EXPECT_NEAR(sim, 2.0 / 3.0, 1e-9);
}

TEST(WeightedSimilarity, SamplingIsDeterministic) {
  std::vector<bio::FastaRecord> reads;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    reads.push_back(read("r" + std::to_string(i),
                         i % 2 ? "ACGTACGTACGTGGCA" : "ACGTACGAACGTGGCA"));
    labels.push_back(0);
  }
  SimilarityOptions options;
  options.max_pairs_per_cluster = 10;
  EXPECT_DOUBLE_EQ(weighted_similarity(labels, reads, options),
                   weighted_similarity(labels, reads, options));
}

TEST(WeightedSimilarity, MinClusterSizeFilter) {
  const std::vector<bio::FastaRecord> reads{
      read("a", "ACGT"), read("b", "ACGT"),  // cluster of 2
      read("c", "TTTT"), read("d", "TTTT"), read("e", "TTTT")};
  const std::vector<int> labels{0, 0, 1, 1, 1};
  SimilarityOptions options;
  options.min_cluster_size = 3;
  EXPECT_DOUBLE_EQ(weighted_similarity(labels, reads, options), 1.0);
}

// ---------------------------------------------------------- clusters_at_least

TEST(ClustersAtLeast, AppliesSizeThreshold) {
  const std::vector<int> labels{0, 0, 0, 1, 2, 2};
  EXPECT_EQ(clusters_at_least(labels, 1), 3u);
  EXPECT_EQ(clusters_at_least(labels, 2), 2u);
  EXPECT_EQ(clusters_at_least(labels, 3), 1u);
  EXPECT_EQ(clusters_at_least(labels, 4), 0u);
}

// -------------------------------------------------------------- diversity

TEST(ShannonIndex, UniformAndSkewed) {
  // 4 equal clusters: H = ln(4).
  const std::vector<int> uniform{0, 1, 2, 3};
  EXPECT_NEAR(shannon_index(uniform), std::log(4.0), 1e-12);
  // Single cluster: H = 0.
  EXPECT_DOUBLE_EQ(shannon_index(std::vector<int>{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_index(std::vector<int>{}), 0.0);
}

TEST(Chao1Richness, ClassicFormula) {
  // 2 singletons, 1 doubleton, 1 tripleton: S=4, F1=2, F2=1 -> 4 + 4/2 = 6.
  const std::vector<int> labels{0, 1, 2, 2, 3, 3, 3};
  EXPECT_DOUBLE_EQ(chao1_richness(labels), 6.0);
}

TEST(Chao1Richness, BiasCorrectedWithoutDoubletons) {
  // 2 singletons, no doubletons: S=2 + F1(F1-1)/2 = 2 + 1 = 3.
  const std::vector<int> labels{0, 1};
  EXPECT_DOUBLE_EQ(chao1_richness(labels), 3.0);
  EXPECT_DOUBLE_EQ(chao1_richness(std::vector<int>{}), 0.0);
}

}  // namespace
}  // namespace mrmc::eval

// Environmental 16S binning — the paper's motivating workflow: cluster an
// unlabeled seawater amplicon sample into OTUs, then derive the community
// statistics microbial ecologists actually want (OTU abundance profile,
// Shannon diversity, Chao1 richness — the Sogin et al. "rare biosphere"
// analysis).
//
//   ./env16s_binning [sample-id] [theta]      (default: 53R 0.35)
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/mrmc.hpp"
#include "eval/metrics.hpp"
#include "simdata/datasets.hpp"

int main(int argc, char** argv) {
  using namespace mrmc;

  const std::string sid = argc > 1 ? argv[1] : "53R";
  const double theta = argc > 2 ? std::strtod(argv[2], nullptr) : 0.35;

  const auto& spec = simdata::environmental_spec(sid);
  std::cout << "Sample " << spec.sid << " — " << spec.site << " ("
            << spec.depth_m << " m, " << spec.temp_c << " C, paper reads: "
            << spec.paper_reads << ")\n";

  const auto sample = simdata::build_environmental(spec, {});
  std::cout << "synthesized " << sample.size() << " reads (avg "
            << [&] {
                 std::size_t total = 0;
                 for (const auto& read : sample.reads) total += read.seq.size();
                 return total / sample.size();
               }()
            << " bp)\n\n";

  // Cluster with the paper's 16S parameters: k=15, 50 hash functions,
  // agglomerative hierarchical clustering on the simulated cluster.
  core::PipelineParams params;
  params.minhash = {.kmer = 15, .num_hashes = 50, .seed = 7};
  params.mode = core::Mode::kHierarchical;
  params.theta = theta;
  core::ExecutionOptions exec;
  exec.cluster.nodes = 8;

  const auto result = core::run_pipeline(sample.reads, params, exec);
  std::cout << "clustered into " << result.num_clusters << " OTUs in "
            << common::format_duration(result.wall_s) << " (simulated 8-node "
            << "cluster time " << common::format_duration(result.sim_total_s)
            << ")\n\n";

  // OTU abundance profile: top 10 plus the tail.
  const auto sizes = eval::cluster_sizes(result.labels);
  std::vector<std::size_t> order(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sizes[a] > sizes[b]; });

  std::cout << "OTU abundance profile (top 10):\n";
  for (std::size_t rank = 0; rank < std::min<std::size_t>(10, order.size());
       ++rank) {
    const std::size_t otu = order[rank];
    const double fraction =
        static_cast<double>(sizes[otu]) / static_cast<double>(sample.size());
    std::cout << "  OTU_" << otu << "  " << sizes[otu] << " reads  ("
              << common::fmt_pct(fraction, 1) << "%)  "
              << std::string(static_cast<std::size_t>(fraction * 60), '#') << "\n";
  }
  const std::size_t singletons =
      std::count(sizes.begin(), sizes.end(), std::size_t{1});
  std::cout << "  ... " << singletons
            << " singleton OTUs (the rare biosphere)\n\n";

  std::cout << "diversity estimates:\n"
            << "  Shannon index H' = "
            << common::fmt_f(eval::shannon_index(result.labels), 3) << "\n"
            << "  Chao1 richness   = "
            << common::fmt_f(eval::chao1_richness(result.labels), 1)
            << " (observed " << result.num_clusters << ")\n";
  return 0;
}

// Miniature Pig Latin data model: dynamically-typed tuples with atom,
// numeric-list and bag fields.  Relations are bags of tuples.  This is the
// substrate for the paper's Algorithm 3 script (see pig/script.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mrmc::pig {

struct Tuple;
using Bag = std::vector<Tuple>;

/// Field types: chararray, long, double, numeric list (k-mer / minwise
/// arrays), double list (similarity rows), and nested bag (GROUP output).
using Value = std::variant<std::string, long, double, std::vector<long>,
                           std::vector<double>, Bag>;

struct Tuple {
  std::vector<Value> fields;

  Tuple() = default;
  explicit Tuple(std::vector<Value> f) : fields(std::move(f)) {}

  [[nodiscard]] std::size_t size() const noexcept { return fields.size(); }

  template <typename T>
  [[nodiscard]] const T& get(std::size_t i) const {
    return std::get<T>(fields.at(i));
  }
  template <typename T>
  [[nodiscard]] T& get(std::size_t i) {
    return std::get<T>(fields.at(i));
  }
};

using Relation = std::vector<Tuple>;

/// Render a tuple as tab-separated text (lists comma-joined, bags counted) —
/// the format STORE writes to SimDfs.
std::string to_text(const Tuple& tuple);

}  // namespace mrmc::pig

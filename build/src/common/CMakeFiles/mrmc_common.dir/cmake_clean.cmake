file(REMOVE_RECURSE
  "CMakeFiles/mrmc_common.dir/table.cpp.o"
  "CMakeFiles/mrmc_common.dir/table.cpp.o.d"
  "CMakeFiles/mrmc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mrmc_common.dir/thread_pool.cpp.o.d"
  "libmrmc_common.a"
  "libmrmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

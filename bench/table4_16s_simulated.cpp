// Table IV reproduction — clustering the simulated 16S benchmark (reads
// drawn from 43 reference genes) at 3% and 5% sequencing error, comparing
// all eight methods: MrMC-MinH^h/^g, MC-LSH, UCLUST, CD-HIT, ESPRIT,
// DOTUR, Mothur.  Reports #Cluster and W.Sim per method; ground truth is
// 43 genes.
//
// Paper parameters for MrMC-MinH on 16S data: k=15, 50 hash functions.
// The paper's theta is an alignment-identity threshold (0.95); sketch
// Jaccard lives on a different scale, so the MinHash methods take their
// own calibrated cuts (see EXPERIMENTS.md).
//
//   ./table4_16s_simulated [--reads=600] [--genomes=43] [--kmer=15]
//       [--hashes=50] [--theta-h=0.12] [--theta-g=0.05] [--identity=0.95]
//       [--nodes=8] [--seed=42]
//       [--trace=t4.json] [--metrics] [--report[=t4.html]]  # obs outputs
#include <iostream>

#include "bench_util.hpp"

using namespace mrmc;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  bench::apply_obs_flags(flags);
  const std::size_t reads = flags.num("reads", 600);
  const std::size_t genomes = flags.num("genomes", 43);
  const int kmer = static_cast<int>(flags.num("kmer", 15));
  const std::size_t hashes = flags.num("hashes", 50);
  const double theta_h = flags.real("theta-h", 0.12);
  const double theta_g = flags.real("theta-g", 0.05);
  const double identity = flags.real("identity", 0.95);
  const std::size_t nodes = flags.num("nodes", 8);
  const std::uint64_t seed = flags.num("seed", 42);

  common::TextTable table(
      {"Method", "ErrorRate", "# Cluster", "W.Sim", "W.Acc", "Time"});

  for (const double error_rate : {0.03, 0.05}) {
    const auto sample = simdata::build_16s_simulated(
        {.genomes = genomes, .reads = reads, .error_rate = error_rate,
         .seed = seed});
    // Paper filter: 50-of-345k scaled to our read count.
    const std::size_t min_size = bench::scaled_min_cluster_size(reads, 345000);

    std::vector<bench::MethodResult> results;
    results.push_back(bench::run_mrmc(sample, core::Mode::kHierarchical, kmer,
                                      hashes, theta_h, nodes, seed,
                                      /*canonical=*/false));
    results.push_back(bench::run_mrmc(sample, core::Mode::kGreedy, kmer, hashes,
                                      theta_g, nodes, seed, /*canonical=*/false));
    results.push_back(bench::wrap_baseline(
        "MC-LSH", baselines::mclsh_cluster(
                      sample.reads, {.theta = theta_g, .kmer = kmer,
                                     .num_hashes = hashes, .bands = 10,
                                     .seed = seed})));
    results.push_back(bench::wrap_baseline(
        "UCLUST", baselines::uclust_cluster(sample.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "CD-HIT", baselines::cdhit_cluster(sample.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "ESPRIT", baselines::esprit_cluster(sample.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "DOTUR", baselines::dotur_cluster(sample.reads, {.identity = identity})));
    results.push_back(bench::wrap_baseline(
        "Mothur", baselines::mothur_cluster(sample.reads, {.identity = identity})));

    for (const auto& result : results) {
      const auto eval = bench::evaluate(result, sample, min_size, 16, 2);
      table.add_row({result.method, common::fmt_pct(error_rate, 0) + "%",
                     std::to_string(eval.clusters), common::fmt_pct(eval.wsim),
                     eval.wacc < 0 ? "-" : common::fmt_pct(eval.wacc),
                     common::format_duration(result.wall_s)});
      std::cerr << "done " << result.method << " @" << error_rate << "\n";
    }
  }

  std::cout << "Table IV — 16S simulated dataset (" << genomes
            << " reference genes, " << reads << " reads; ground truth = "
            << genomes << " clusters)\n"
            << "(MrMC/MC-LSH: k=" << kmer << ", n=" << hashes
            << "; alignment methods: identity=" << identity << ")\n";
  table.print(std::cout);
  bench::finish_obs(flags);
  return 0;
}

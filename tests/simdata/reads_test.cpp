#include "simdata/reads.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bio/dna.hpp"
#include "common/error.hpp"

namespace mrmc::simdata {
namespace {

TEST(ErrorModel, UniformSplitsEightyTenTen) {
  const ErrorModel model = ErrorModel::uniform(0.05);
  EXPECT_DOUBLE_EQ(model.subst_rate, 0.04);
  EXPECT_DOUBLE_EQ(model.ins_rate, 0.005);
  EXPECT_DOUBLE_EQ(model.del_rate, 0.005);
  EXPECT_NEAR(model.total(), 0.05, 1e-12);
}

TEST(ApplyErrors, ZeroRateIsIdentity) {
  const std::string tmpl = "ACGTACGTACGT";
  EXPECT_EQ(apply_errors(tmpl, {}, 1), tmpl);
}

TEST(ApplyErrors, SubstitutionRateObserved) {
  std::string tmpl(20000, 'A');
  const std::string noisy = apply_errors(tmpl, {.subst_rate = 0.1}, 2);
  ASSERT_EQ(noisy.size(), tmpl.size());
  std::size_t diffs = 0;
  for (const char c : noisy) {
    if (c != 'A') ++diffs;
  }
  EXPECT_NEAR(static_cast<double>(diffs) / 20000.0, 0.1, 0.01);
}

TEST(ApplyErrors, SubstitutionNeverKeepsOriginalBase) {
  const std::string noisy = apply_errors(std::string(5000, 'G'),
                                         {.subst_rate = 1.0}, 3);
  for (const char c : noisy) EXPECT_NE(c, 'G');
}

TEST(ApplyErrors, DeletionsShrink) {
  const std::string noisy =
      apply_errors(std::string(10000, 'C'), {.del_rate = 0.2}, 4);
  EXPECT_NEAR(static_cast<double>(noisy.size()), 8000.0, 300.0);
}

TEST(ApplyErrors, InsertionsGrow) {
  const std::string noisy =
      apply_errors(std::string(10000, 'C'), {.ins_rate = 0.2}, 5);
  EXPECT_NEAR(static_cast<double>(noisy.size()), 12000.0, 300.0);
}

TEST(ApplyErrors, DeterministicPerSeed) {
  const std::string tmpl = "ACGTACGTACGTACGTACGT";
  const ErrorModel model = ErrorModel::uniform(0.2);
  EXPECT_EQ(apply_errors(tmpl, model, 6), apply_errors(tmpl, model, 6));
  EXPECT_NE(apply_errors(tmpl, model, 6), apply_errors(tmpl, model, 7));
}

// ---------------------------------------------------------------- shotgun

Genome test_genome() { return random_genome("genome", 20000, 0.5, 10); }

TEST(ShotgunReads, CountAndIds) {
  const auto reads = shotgun_reads(test_genome(), 25, {}, "gx", 11);
  ASSERT_EQ(reads.size(), 25u);
  EXPECT_EQ(reads[0].id, "gx_r0");
  EXPECT_EQ(reads[24].id, "gx_r24");
}

TEST(ShotgunReads, LengthsWithinJitterBounds) {
  ShotgunParams params;
  params.read_length = 200;
  params.length_jitter = 0.1;
  params.errors = {};  // indels would perturb length
  const auto reads = shotgun_reads(test_genome(), 50, params, "g", 12);
  for (const auto& read : reads) {
    EXPECT_GE(read.seq.size(), 180u);
    EXPECT_LE(read.seq.size(), 221u);
  }
}

TEST(ShotgunReads, ErrorFreeSingleStrandReadsAreSubstrings) {
  ShotgunParams params;
  params.both_strands = false;
  params.read_length = 100;
  const Genome genome = test_genome();
  const auto reads = shotgun_reads(genome, 20, params, "g", 13);
  for (const auto& read : reads) {
    EXPECT_NE(genome.seq.find(read.seq), std::string::npos);
  }
}

TEST(ShotgunReads, BothStrandsProducesReverseReads) {
  ShotgunParams params;
  params.read_length = 80;
  const Genome genome = test_genome();
  const auto reads = shotgun_reads(genome, 60, params, "g", 14);
  int forward = 0, reverse = 0;
  for (const auto& read : reads) {
    if (genome.seq.find(read.seq) != std::string::npos) {
      ++forward;
    } else if (genome.seq.find(bio::reverse_complement(read.seq)) !=
               std::string::npos) {
      ++reverse;
    }
  }
  EXPECT_GT(forward, 10);
  EXPECT_GT(reverse, 10);
  EXPECT_EQ(forward + reverse, 60);
}

TEST(ShotgunReads, RejectsEmptyGenome) {
  const Genome empty{"e", ""};
  EXPECT_THROW(shotgun_reads(empty, 1, {}, "g", 15), common::InvalidArgument);
}

// ------------------------------------------------------------- mix_shotgun

TEST(MixShotgun, TotalAndLabelsConsistent) {
  const std::vector<Genome> genomes = {random_genome("a", 5000, 0.4, 16),
                                       random_genome("b", 5000, 0.6, 17)};
  const LabeledReads mix = mix_shotgun(genomes, {1, 1}, 100, {}, 18);
  EXPECT_EQ(mix.size(), 100u);
  EXPECT_EQ(mix.labels.size(), 100u);
  EXPECT_EQ(mix.species, (std::vector<std::string>{"a", "b"}));
  for (const int label : mix.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LE(label, 1);
  }
}

TEST(MixShotgun, RatiosAreApportioned) {
  const std::vector<Genome> genomes = {random_genome("a", 5000, 0.5, 19),
                                       random_genome("b", 5000, 0.5, 20),
                                       random_genome("c", 5000, 0.5, 21)};
  const LabeledReads mix = mix_shotgun(genomes, {1, 1, 8}, 1000, {}, 22);
  std::map<int, int> counts;
  for (const int label : mix.labels) ++counts[label];
  EXPECT_EQ(counts[0], 100);
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 800);
}

TEST(MixShotgun, LabelsMatchReadHeaders) {
  const std::vector<Genome> genomes = {random_genome("speciesA", 5000, 0.5, 23),
                                       random_genome("speciesB", 5000, 0.5, 24)};
  const LabeledReads mix = mix_shotgun(genomes, {1, 1}, 50, {}, 25);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const std::string expected = "label=" + std::to_string(mix.labels[i]);
    EXPECT_NE(mix.reads[i].header.find(expected), std::string::npos);
  }
}

TEST(MixShotgun, ShufflesInputOrder) {
  const std::vector<Genome> genomes = {random_genome("a", 5000, 0.5, 26),
                                       random_genome("b", 5000, 0.5, 27)};
  const LabeledReads mix = mix_shotgun(genomes, {1, 1}, 200, {}, 28);
  // If unshuffled, the first 100 labels would all be 0.
  const long first_half_sum =
      std::count(mix.labels.begin(), mix.labels.begin() + 100, 1);
  EXPECT_GT(first_half_sum, 20);
  EXPECT_LT(first_half_sum, 80);
}

TEST(MixShotgun, DeterministicPerSeed) {
  const std::vector<Genome> genomes = {random_genome("a", 5000, 0.5, 29)};
  const LabeledReads m1 = mix_shotgun(genomes, {1}, 30, {}, 30);
  const LabeledReads m2 = mix_shotgun(genomes, {1}, 30, {}, 30);
  EXPECT_EQ(m1.reads, m2.reads);
  EXPECT_EQ(m1.labels, m2.labels);
}

TEST(MixShotgun, RejectsBadArguments) {
  const std::vector<Genome> genomes = {random_genome("a", 5000, 0.5, 31)};
  EXPECT_THROW(mix_shotgun({}, {}, 10, {}, 1), common::InvalidArgument);
  EXPECT_THROW(mix_shotgun(genomes, {1, 2}, 10, {}, 1), common::InvalidArgument);
  EXPECT_THROW(mix_shotgun(genomes, {0}, 10, {}, 1), common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::simdata

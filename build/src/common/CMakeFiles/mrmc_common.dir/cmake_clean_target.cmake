file(REMOVE_RECURSE
  "libmrmc_common.a"
)

#include "eval/external_indices.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::eval {
namespace {

const std::vector<int> kTruth{0, 0, 0, 1, 1, 1, 2, 2, 2};
const std::vector<int> kPerfect = kTruth;
const std::vector<int> kMerged{0, 0, 0, 0, 0, 0, 0, 0, 0};
const std::vector<int> kSplit{0, 1, 2, 3, 4, 5, 6, 7, 8};

// --------------------------------------------------------------------- purity

TEST(Purity, PerfectIsOne) { EXPECT_DOUBLE_EQ(purity(kPerfect, kTruth), 1.0); }

TEST(Purity, AllMergedIsMajorityFraction) {
  EXPECT_NEAR(purity(kMerged, kTruth), 3.0 / 9.0, 1e-12);
}

TEST(Purity, AllSplitIsTriviallyPure) {
  EXPECT_DOUBLE_EQ(purity(kSplit, kTruth), 1.0);
}

TEST(Purity, EmptyIsZero) { EXPECT_DOUBLE_EQ(purity({}, {}), 0.0); }

// ---------------------------------------------------------------- F-measure

TEST(PairwiseFMeasure, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(pairwise_f_measure(kPerfect, kTruth), 1.0);
}

TEST(PairwiseFMeasure, SplitHasZeroRecall) {
  EXPECT_DOUBLE_EQ(pairwise_f_measure(kSplit, kTruth), 0.0);
}

TEST(PairwiseFMeasure, MergedHasPerfectRecallLowPrecision) {
  // precision = 9/36, recall = 1 -> F = 2*0.25/1.25 = 0.4.
  EXPECT_NEAR(pairwise_f_measure(kMerged, kTruth), 0.4, 1e-12);
}

TEST(PairwiseFMeasure, PenalizesPartialErrors) {
  std::vector<int> noisy = kTruth;
  noisy[0] = 1;  // one misassignment
  const double f = pairwise_f_measure(noisy, kTruth);
  EXPECT_LT(f, 1.0);
  EXPECT_GT(f, 0.5);
}

// ----------------------------------------------------------------------- NMI

TEST(Nmi, PerfectIsOne) {
  EXPECT_NEAR(normalized_mutual_information(kPerfect, kTruth), 1.0, 1e-12);
}

TEST(Nmi, RelabelingInvariant) {
  const std::vector<int> relabeled{2, 2, 2, 0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(relabeled, kTruth), 1.0, 1e-12);
}

TEST(Nmi, TrivialPartitionIsZero) {
  EXPECT_DOUBLE_EQ(normalized_mutual_information(kMerged, kTruth), 0.0);
}

TEST(Nmi, BoundedToUnitInterval) {
  common::Xoshiro256 rng(1);
  std::vector<int> random(kTruth.size());
  for (auto& label : random) label = static_cast<int>(rng.bounded(3));
  const double nmi = normalized_mutual_information(random, kTruth);
  EXPECT_GE(nmi, -1e-12);
  EXPECT_LE(nmi, 1.0 + 1e-12);
}

// ----------------------------------------------------------------------- ARI

TEST(Ari, PerfectIsOne) {
  EXPECT_NEAR(adjusted_rand_index(kPerfect, kTruth), 1.0, 1e-12);
}

TEST(Ari, RandomIsNearZero) {
  // Average ARI of random labelings is ~0 (individual draws jitter around it).
  common::Xoshiro256 rng(2);
  double total = 0.0;
  constexpr int kTrials = 200;
  std::vector<int> truth(60), random(60);
  for (auto& t : truth) t = static_cast<int>(rng.bounded(4));
  for (int trial = 0; trial < kTrials; ++trial) {
    for (auto& label : random) label = static_cast<int>(rng.bounded(4));
    total += adjusted_rand_index(random, truth);
  }
  EXPECT_NEAR(total / kTrials, 0.0, 0.02);
}

TEST(Ari, MergedIsZero) {
  // One cluster has expected == observed agreement -> index 0.
  EXPECT_NEAR(adjusted_rand_index(kMerged, kTruth), 0.0, 1e-12);
}

TEST(Ari, WorseThanRandomCanBeNegative) {
  // Systematic anti-correlation: split each true class across clusters so
  // co-clustered pairs are never same-class.
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  const std::vector<int> anti{0, 1, 0, 1, 0, 1};
  EXPECT_LT(adjusted_rand_index(anti, truth), 0.0);
}

// --------------------------------------------------------------- rarefaction

TEST(Rarefaction, MonotoneAndEndsAtObservedRichness) {
  const std::vector<int> labels{0, 0, 0, 1, 1, 2, 3, 3, 3, 3};
  const auto curve = rarefaction_curve(labels, 5);
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1] - 1e-9);
  }
  EXPECT_NEAR(curve.back(), 4.0, 1e-9);  // full sample sees all 4 clusters
}

TEST(Rarefaction, UniformCommunitySaturatesSlower) {
  // A skewed community reveals its few dominant clusters early.
  std::vector<int> uniform, skewed;
  for (int i = 0; i < 40; ++i) uniform.push_back(i % 8);
  for (int i = 0; i < 33; ++i) skewed.push_back(0);
  for (int i = 0; i < 7; ++i) skewed.push_back(1 + i);
  const auto curve_uniform = rarefaction_curve(uniform, 4);
  const auto curve_skewed = rarefaction_curve(skewed, 4);
  // At 25% subsampling the uniform community has found nearly all 8
  // clusters; the skewed one is still missing most of its singletons.
  EXPECT_GT(curve_uniform[0] / 8.0, curve_skewed[0] / 8.0);
}

TEST(Rarefaction, EmptyAndDegenerate) {
  EXPECT_TRUE(rarefaction_curve({}, 3).empty());
  EXPECT_THROW(rarefaction_curve(std::vector<int>{0}, 0), common::InvalidArgument);
  const auto curve = rarefaction_curve(std::vector<int>{0, 0, 0}, 2);
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

}  // namespace
}  // namespace mrmc::eval

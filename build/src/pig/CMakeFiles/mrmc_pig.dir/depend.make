# Empty dependencies file for mrmc_pig.
# This may be replaced when dependencies are built.

#include "core/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/error.hpp"

namespace mrmc::core {

const char* linkage_name(Linkage linkage) noexcept {
  switch (linkage) {
    case Linkage::kSingle: return "single";
    case Linkage::kAverage: return "average";
    case Linkage::kComplete: return "complete";
  }
  return "?";
}

SimilarityMatrix::SimilarityMatrix(std::size_t n, float fill)
    : n_(n), data_(n * n, fill) {}

SimilarityMatrix pairwise_similarity_matrix(const kernels::SketchMatrix& sketches,
                                            SketchEstimator estimator,
                                            common::ThreadPool* pool) {
  const std::size_t n = sketches.rows();
  SimilarityMatrix matrix(n, 0.0F);
  if (n == 0) return matrix;

  if (estimator == SketchEstimator::kComponentMatch) {
    // Cache-blocked SIMD fill straight into the matrix storage.
    kernels::component_match_matrix(sketches, matrix.mutable_data(), n,
                                    kernels::active_backend(), pool);
    return matrix;
  }

  // Set-based: pre-sort once so each comparison is a linear merge.
  const SortedSketchStore store(sketches);
  auto fill_row = [&](std::size_t i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, static_cast<float>(store.jaccard(i, j)));
    }
  };
  if (pool != nullptr && n > 64) {
    pool->parallel_for(n, fill_row);
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_row(i);
  }
  return matrix;
}

SimilarityMatrix pairwise_similarity_matrix(std::span<const Sketch> sketches,
                                            SketchEstimator estimator,
                                            common::ThreadPool* pool) {
  const std::size_t n = sketches.size();
  const bool uniform = std::all_of(
      sketches.begin(), sketches.end(), [&](const Sketch& s) {
        return s.size() == sketches.front().size();
      });
  if (n == 0 || (uniform && estimator == SketchEstimator::kComponentMatch)) {
    return pairwise_similarity_matrix(kernels::SketchMatrix::from_sketches(sketches),
                                      estimator, pool);
  }
  if (estimator == SketchEstimator::kSetBased) {
    // The store handles ragged lengths too; same merge as the matrix path.
    SimilarityMatrix matrix(n, 0.0F);
    const SortedSketchStore store(sketches);
    auto fill_row = [&](std::size_t i) {
      matrix.set(i, i, 1.0F);
      for (std::size_t j = i + 1; j < n; ++j) {
        matrix.set(i, j, static_cast<float>(store.jaccard(i, j)));
      }
    };
    if (pool != nullptr && n > 64) {
      pool->parallel_for(n, fill_row);
    } else {
      for (std::size_t i = 0; i < n; ++i) fill_row(i);
    }
    return matrix;
  }

  // Ragged component-match (not produced by MinHasher): legacy per-pair
  // semantics — mismatched lengths score 0.
  SimilarityMatrix matrix(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    matrix.set(i, i, 1.0F);
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, static_cast<float>(
                           component_match_similarity(sketches[i], sketches[j])));
    }
  }
  return matrix;
}

SimilarityMatrix similarity_matrix_from_graph(
    const candidates::SparseSimilarityGraph& graph) {
  SimilarityMatrix matrix(graph.num_vertices, 0.0F);
  for (std::size_t i = 0; i < graph.num_vertices; ++i) matrix.set(i, i, 1.0F);
  for (const auto& edge : graph.edges) {
    MRMC_REQUIRE(edge.a < edge.b && edge.b < graph.num_vertices,
                 "graph edge out of range");
    // The one float narrowing in the sparse path — the same cast the dense
    // similarity job applies, so exact-backend graphs densify bit-for-bit.
    matrix.set(edge.a, edge.b, static_cast<float>(edge.similarity));
  }
  return matrix;
}

Dendrogram agglomerate(const SimilarityMatrix& matrix, Linkage linkage) {
  const std::size_t n = matrix.size();
  Dendrogram dendrogram;
  dendrogram.num_leaves = n;
  if (n <= 1) return dendrogram;
  dendrogram.merges.reserve(n - 1);

  // Working distance matrix, mutated in place by Lance-Williams updates.
  // Dead slots and the diagonal hold +inf so the nearest-neighbour scan is a
  // pure vectorizable min-reduction with no per-slot branch.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i * n + j] = i == j ? kInf : 1.0 - static_cast<double>(matrix.at(i, j));
    }
  }

  std::vector<bool> active(n, true);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<int> node_id(n);  // dendrogram node currently in each slot
  std::iota(node_id.begin(), node_id.end(), 0);

  auto nearest = [&](std::size_t slot) {
    const std::span<const double> row(dist.data() + slot * n, n);
    const std::size_t best = kernels::argmin(row);
    MRMC_CHECK(best < n && row[best] < kInf, "no active neighbour found");
    return std::pair{best, row[best]};
  };

  std::vector<std::size_t> chain;
  chain.reserve(n);
  std::size_t merges_done = 0;
  std::size_t scan_start = 0;  // earliest possibly-active slot

  while (merges_done < n - 1) {
    if (chain.empty()) {
      while (!active[scan_start]) ++scan_start;
      chain.push_back(scan_start);
    }
    // Grow the chain until a reciprocal nearest-neighbour pair appears.
    for (;;) {
      const std::size_t tip = chain.back();
      const auto [nn, d] = nearest(tip);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal pair (tip, nn): merge.
        const std::size_t a = std::min(tip, nn);
        const std::size_t b = std::max(tip, nn);

        Dendrogram::Merge merge;
        merge.left = node_id[a];
        merge.right = node_id[b];
        merge.distance = d;
        merge.size = cluster_size[a] + cluster_size[b];
        dendrogram.merges.push_back(merge);

        // Lance-Williams update into slot a; slot b dies.
        const auto size_a = static_cast<double>(cluster_size[a]);
        const auto size_b = static_cast<double>(cluster_size[b]);
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == a || k == b) continue;
          const double dak = dist[a * n + k];
          const double dbk = dist[b * n + k];
          double updated = 0;
          switch (linkage) {
            case Linkage::kSingle: updated = std::min(dak, dbk); break;
            case Linkage::kComplete: updated = std::max(dak, dbk); break;
            case Linkage::kAverage:
              updated = (size_a * dak + size_b * dbk) / (size_a + size_b);
              break;
          }
          dist[a * n + k] = updated;
          dist[k * n + a] = updated;
        }
        active[b] = false;
        // Retire slot b: +inf across its row and column keeps it invisible
        // to the branch-free min scans.
        std::fill(dist.begin() + static_cast<std::ptrdiff_t>(b * n),
                  dist.begin() + static_cast<std::ptrdiff_t>((b + 1) * n), kInf);
        for (std::size_t k = 0; k < n; ++k) dist[k * n + b] = kInf;
        cluster_size[a] += cluster_size[b];
        node_id[a] = static_cast<int>(n + merges_done);
        ++merges_done;

        chain.pop_back();
        chain.pop_back();
        break;
      }
      chain.push_back(nn);
    }
  }

  // Merges are recorded in creation order: children always precede parents
  // (node n + i exists only after merge i).  Heights may interleave across
  // chain restarts; consumers that need height order sort by distance.
  return dendrogram;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<int> cut_dendrogram(const Dendrogram& dendrogram, double theta) {
  MRMC_REQUIRE(theta >= 0.0 && theta <= 1.0, "theta in [0, 1]");
  const std::size_t n = dendrogram.num_leaves;
  const double max_distance = 1.0 - theta + 1e-12;

  // Merges are in creation order (children precede parents: node n + i only
  // exists after merge i), so one forward pass resolves every node to a
  // representative leaf.  A merge within the cutoff unites its two sides.
  UnionFind uf(n);
  std::vector<int> rep(n + dendrogram.merges.size(), -1);
  for (std::size_t i = 0; i < n; ++i) rep[i] = static_cast<int>(i);

  for (std::size_t idx = 0; idx < dendrogram.merges.size(); ++idx) {
    const auto& merge = dendrogram.merges[idx];
    const int left_rep = rep[merge.left];
    const int right_rep = rep[merge.right];
    MRMC_CHECK(left_rep >= 0 && right_rep >= 0,
               "dendrogram children must precede parents");
    if (merge.distance <= max_distance) {
      uf.unite(static_cast<std::size_t>(left_rep),
               static_cast<std::size_t>(right_rep));
    }
    rep[n + idx] = left_rep;
  }

  // Compact labels in order of first appearance.
  std::vector<int> labels(n, -1);
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      labels[i] = static_cast<int>(roots.size() - 1);
    } else {
      labels[i] = static_cast<int>(it - roots.begin());
    }
  }
  return labels;
}


namespace {

HierarchicalResult cluster_from_matrix(const SimilarityMatrix& matrix,
                                       const HierarchicalParams& params) {
  HierarchicalResult result;
  result.dendrogram = agglomerate(matrix, params.linkage);
  result.labels = cut_dendrogram(result.dendrogram, params.theta);
  result.num_clusters = count_clusters(result.labels);
  return result;
}

}  // namespace

HierarchicalResult hierarchical_cluster(const kernels::SketchMatrix& sketches,
                                        const HierarchicalParams& params,
                                        common::ThreadPool* pool) {
  if (sketches.empty()) return {};
  return cluster_from_matrix(
      pairwise_similarity_matrix(sketches, params.estimator, pool), params);
}

HierarchicalResult hierarchical_cluster(std::span<const Sketch> sketches,
                                        const HierarchicalParams& params,
                                        common::ThreadPool* pool) {
  if (sketches.empty()) return {};
  return cluster_from_matrix(
      pairwise_similarity_matrix(sketches, params.estimator, pool), params);
}

std::size_t count_clusters(std::span<const int> labels) {
  std::unordered_set<int> unique(labels.begin(), labels.end());
  return unique.size();
}

}  // namespace mrmc::core

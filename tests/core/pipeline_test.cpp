#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/external_indices.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::core {
namespace {

simdata::LabeledReads small_sample() {
  return simdata::build_whole_metagenome(simdata::whole_metagenome_spec("S8"),
                                         {.reads = 80, .seed = 1});
}

PipelineParams base_params(Mode mode) {
  PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 64, .canonical = true, .seed = 1};
  params.mode = mode;
  params.theta = mode == Mode::kGreedy ? 0.34 : 0.5;
  return params;
}

TEST(Pipeline, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kGreedy), "greedy");
  EXPECT_STREQ(mode_name(Mode::kHierarchical), "hierarchical");
}

TEST(Pipeline, EmptyInput) {
  const PipelineResult result = run_pipeline({}, base_params(Mode::kGreedy));
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(Pipeline, DistributedGreedyMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.distributed = true;
  distributed.cluster.nodes = 4;
  ExecutionOptions local;
  local.distributed = false;

  const auto params = base_params(Mode::kGreedy);
  const auto a = run_pipeline(sample.reads, params, distributed);
  const auto b = run_pipeline(sample.reads, params, local);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(Pipeline, DistributedHierarchicalMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.distributed = true;
  distributed.cluster.nodes = 3;
  ExecutionOptions local;
  local.distributed = false;

  const auto params = base_params(Mode::kHierarchical);
  const auto a = run_pipeline(sample.reads, params, distributed);
  const auto b = run_pipeline(sample.reads, params, local);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Pipeline, LabelsCoverEveryRead) {
  const auto sample = small_sample();
  const auto result = run_pipeline(sample.reads, base_params(Mode::kHierarchical));
  ASSERT_EQ(result.labels.size(), sample.size());
  for (const int label : result.labels) EXPECT_GE(label, 0);
  EXPECT_GE(result.num_clusters, 1u);
}

TEST(Pipeline, DistributedJobsReportStats) {
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.distributed = true;
  exec.cluster.nodes = 4;
  exec.records_per_split = 16;

  const auto result =
      run_pipeline(sample.reads, base_params(Mode::kHierarchical), exec);
  EXPECT_EQ(result.sketch_stats.input_records, sample.size());
  EXPECT_EQ(result.sketch_stats.map_tasks, 5u);  // 80 reads / 16 per split
  EXPECT_EQ(result.similarity_stats.input_records, sample.size());
  EXPECT_EQ(result.cluster_stats.reduce_tasks, 1u);  // GROUP ALL
  EXPECT_GT(result.sim_total_s, 0.0);
  EXPECT_GT(result.sketch_stats.counters.at("reads.sketched"), 0);
}

TEST(Pipeline, GreedySkipsSimilarityJob) {
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.distributed = true;
  const auto result = run_pipeline(sample.reads, base_params(Mode::kGreedy), exec);
  EXPECT_EQ(result.similarity_stats.input_records, 0u);
  EXPECT_EQ(result.cluster_stats.reduce_tasks, 1u);
}

TEST(Pipeline, GreedyIsSimFasterThanHierarchical) {
  // The paper's consistent observation (Table III): greedy ~2x faster.
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 200, .seed = 2});
  ExecutionOptions exec;
  exec.distributed = true;
  const auto greedy = run_pipeline(sample.reads, base_params(Mode::kGreedy), exec);
  const auto hier =
      run_pipeline(sample.reads, base_params(Mode::kHierarchical), exec);
  EXPECT_LT(greedy.sim_total_s, hier.sim_total_s);
}

TEST(Pipeline, MoreNodesLowerSimulatedTime) {
  const auto sample = small_sample();
  ExecutionOptions few, many;
  few.cluster.nodes = 2;
  many.cluster.nodes = 12;
  const auto params = base_params(Mode::kHierarchical);
  const auto slow = run_pipeline(sample.reads, params, few);
  const auto fast = run_pipeline(sample.reads, params, many);
  EXPECT_GT(slow.sim_total_s, fast.sim_total_s);
  EXPECT_EQ(slow.labels, fast.labels);  // node count never changes results
}

TEST(PipelineCost, ModelsArePositiveAndMonotone) {
  EXPECT_GT(cost::sketch_work(100, 50), 0.0);
  EXPECT_GT(cost::sketch_work(200, 50), cost::sketch_work(100, 50));
  EXPECT_GT(cost::compare_work(100), cost::compare_work(50));
  EXPECT_GT(cost::dendrogram_work(1000), cost::dendrogram_work(100));
  EXPECT_GT(cost::sketch_bytes(100), cost::sketch_bytes(10));
  // Packed bytes: exact words, 8x denser at b = 8, rounding up to a word.
  EXPECT_DOUBLE_EQ(cost::packed_sketch_bytes(64, 64), 512.0);
  EXPECT_DOUBLE_EQ(cost::packed_sketch_bytes(64, 8), 64.0);
  EXPECT_DOUBLE_EQ(cost::packed_sketch_bytes(3, 8), 8.0);  // one word minimum
}

// ------------------------------------------------- sketch schemes and b-bit

TEST(Pipeline, CMinHashDistributedMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.cluster.nodes = 4;
  ExecutionOptions local;
  local.distributed = false;
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    auto params = base_params(mode);
    params.minhash.scheme = SketchScheme::kCMinHash;
    const auto a = run_pipeline(sample.reads, params, distributed);
    const auto b = run_pipeline(sample.reads, params, local);
    EXPECT_EQ(a.labels, b.labels) << mode_name(mode);
    EXPECT_GT(a.num_clusters, 1u);
    EXPECT_LT(a.num_clusters, sample.reads.size());
  }
}

TEST(Pipeline, BBitDistributedMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.cluster.nodes = 3;
  ExecutionOptions local;
  local.distributed = false;
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    for (const std::size_t bits : {std::size_t{8}, std::size_t{16}}) {
      auto params = base_params(mode);
      params.sketch_bits = bits;
      const auto a = run_pipeline(sample.reads, params, distributed);
      const auto b = run_pipeline(sample.reads, params, local);
      EXPECT_EQ(a.labels, b.labels) << mode_name(mode) << " bits=" << bits;
    }
  }
}

TEST(Pipeline, BBitLshDistributedMatchesLocal) {
  const auto sample = small_sample();
  ExecutionOptions distributed;
  distributed.cluster.nodes = 4;
  ExecutionOptions local;
  local.distributed = false;
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    auto params = base_params(mode);
    params.sketch_bits = 8;
    params.candidates.backend = candidates::Backend::kLshBanded;
    const auto a = run_pipeline(sample.reads, params, distributed);
    const auto b = run_pipeline(sample.reads, params, local);
    EXPECT_EQ(a.labels, b.labels) << mode_name(mode);
  }
}

TEST(Pipeline, BBitPackingShrinksSketchShuffle) {
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.cluster.nodes = 4;
  auto wide = base_params(Mode::kHierarchical);
  auto narrow = wide;
  narrow.sketch_bits = 8;
  const auto full = run_pipeline(sample.reads, wide, exec);
  const auto packed = run_pipeline(sample.reads, narrow, exec);
  // K=64 at b=8 packs 8 sketches per word slot: ≥ 4x fewer sketch-stage
  // shuffle bytes even after block headers.
  EXPECT_GT(full.sketch_stats.shuffle_bytes, 0.0);
  EXPECT_LT(packed.sketch_stats.shuffle_bytes,
            full.sketch_stats.shuffle_bytes / 4.0);
}

TEST(Pipeline, BBitLabelsStayFaithfulToFullWidth) {
  // Truncation keeps the clustering decisions.  b = 16 labels must agree
  // with the 64-bit labels at ARI >= 0.99 in both modes at the paper's
  // K = 100: the chance-collision floor 2^-16 is far below the per-pair
  // estimator resolution 1/K, so no merge decision should flip.  b = 8 gets
  // a coarser sanity floor — its collision noise (sd ~ sqrt(C/K) per pair)
  // genuinely flips borderline pairs on this boundary-dense sample, which
  // cascades through average linkage; the quality-preserving recommendation
  // the docs make is b = 16.
  const auto sample = small_sample();
  ExecutionOptions exec;
  exec.cluster.nodes = 3;
  for (const Mode mode : {Mode::kGreedy, Mode::kHierarchical}) {
    auto wide = base_params(mode);
    wide.minhash.num_hashes = 100;
    auto narrow = wide;
    narrow.sketch_bits = 16;
    auto byte_wide = wide;
    byte_wide.sketch_bits = 8;
    const auto full = run_pipeline(sample.reads, wide, exec);
    const auto packed = run_pipeline(sample.reads, narrow, exec);
    const auto tiny = run_pipeline(sample.reads, byte_wide, exec);
    EXPECT_GE(eval::adjusted_rand_index(packed.labels, full.labels), 0.99)
        << mode_name(mode);
    EXPECT_GE(eval::adjusted_rand_index(tiny.labels, full.labels), 0.75)
        << mode_name(mode);
  }
}

TEST(Pipeline, RejectsInvalidSketchBits) {
  auto params = base_params(Mode::kGreedy);
  params.sketch_bits = 7;
  const auto sample = small_sample();
  EXPECT_THROW(run_pipeline(sample.reads, params), common::InvalidArgument);
  params.sketch_bits = 0;
  EXPECT_THROW(run_pipeline(sample.reads, params), common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::core

#include "core/lsh_index.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::core {
namespace {

std::vector<Sketch> family_sketches(std::size_t families, std::size_t per_family,
                                    std::size_t length, double noise,
                                    std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<Sketch> sketches;
  for (std::size_t f = 0; f < families; ++f) {
    Sketch base(length);
    for (auto& v : base) v = rng();
    for (std::size_t m = 0; m < per_family; ++m) {
      Sketch member = base;
      for (auto& v : member) {
        if (rng.chance(noise)) v = rng();
      }
      sketches.push_back(std::move(member));
    }
  }
  return sketches;
}

// ---------------------------------------------------------------- the S-curve

TEST(LshCollisionProbability, BoundaryValues) {
  EXPECT_DOUBLE_EQ(lsh_collision_probability(0.0, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(lsh_collision_probability(1.0, 10, 5), 1.0);
}

TEST(LshCollisionProbability, MonotoneInSimilarity) {
  double previous = -1.0;
  for (double j = 0.0; j <= 1.0; j += 0.1) {
    const double p = lsh_collision_probability(j, 10, 5);
    EXPECT_GE(p, previous);
    previous = p;
  }
}

TEST(LshCollisionProbability, MoreBandsCatchMore) {
  EXPECT_GT(lsh_collision_probability(0.5, 20, 5),
            lsh_collision_probability(0.5, 5, 5));
}

TEST(LshThreshold, HalfwayPointApproximation) {
  // At J = threshold, collision probability is near 1 - (1-1/b)^b ~ 0.63.
  const double threshold = lsh_threshold(10, 5);
  const double p = lsh_collision_probability(threshold, 10, 5);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 0.75);
}

// -------------------------------------------------------------------- index

TEST(LshIndex, RejectsBadShapes) {
  EXPECT_THROW(LshIndex(50, {.bands = 7}), common::InvalidArgument);
  EXPECT_THROW(LshIndex(50, {.bands = 0}), common::InvalidArgument);
  LshIndex index(50, {.bands = 10});
  EXPECT_THROW(index.insert(0, Sketch(49)), common::InvalidArgument);
}

TEST(LshIndex, IdenticalSketchesAlwaysCandidates) {
  LshIndex index(40, {.bands = 8});
  common::Xoshiro256 rng(1);
  Sketch sketch(40);
  for (auto& v : sketch) v = rng();
  index.insert(7, sketch);
  const auto candidates = index.candidates(sketch);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 7);
  EXPECT_EQ(index.size(), 1u);
}

TEST(LshIndex, DisjointSketchesRarelyCollide) {
  LshIndex index(40, {.bands = 8});
  common::Xoshiro256 rng(2);
  for (int id = 0; id < 50; ++id) {
    Sketch sketch(40);
    for (auto& v : sketch) v = rng();
    index.insert(id, sketch);
  }
  Sketch probe(40);
  for (auto& v : probe) v = rng();
  EXPECT_LT(index.candidates(probe).size(), 3u);
}

TEST(LshIndex, SimilarSketchesCollide) {
  LshIndex index(40, {.bands = 20});  // rows=2: sensitive shape
  common::Xoshiro256 rng(3);
  Sketch base(40);
  for (auto& v : base) v = rng();
  index.insert(0, base);
  Sketch similar = base;
  for (std::size_t i = 0; i < 4; ++i) similar[i * 10] = rng();  // J ~ 0.9
  const auto candidates = index.candidates(similar);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0], 0);
}

TEST(LshIndex, CandidatesDedupAcrossBands) {
  LshIndex index(40, {.bands = 8});
  common::Xoshiro256 rng(4);
  Sketch sketch(40);
  for (auto& v : sketch) v = rng();
  index.insert(1, sketch);
  // The same id collides in all 8 bands but must be returned once.
  EXPECT_EQ(index.candidates(sketch).size(), 1u);
}

// ------------------------------------------------------ indexed greedy

TEST(GreedyClusterIndexed, MatchesExactGreedyOnSeparatedData) {
  const auto sketches = family_sketches(5, 12, 40, 0.05, 5);
  const GreedyParams params{.theta = 0.5,
                            .estimator = SketchEstimator::kComponentMatch};
  const auto exact = greedy_cluster(sketches, params);
  const auto indexed = greedy_cluster_indexed(sketches, params, {.bands = 20});
  EXPECT_EQ(indexed.labels, exact.labels);
  EXPECT_EQ(indexed.num_clusters, exact.num_clusters);
}

TEST(GreedyClusterIndexed, FarFewerComparisonsThanExact) {
  const auto sketches = family_sketches(40, 10, 40, 0.05, 6);
  const GreedyParams params{.theta = 0.5,
                            .estimator = SketchEstimator::kComponentMatch};
  const auto exact = greedy_cluster(sketches, params);
  const auto indexed = greedy_cluster_indexed(sketches, params, {.bands = 20});
  EXPECT_EQ(indexed.num_clusters, exact.num_clusters);
  EXPECT_LT(indexed.comparisons, exact.comparisons / 4);
}

TEST(GreedyClusterIndexed, EmptyAndSingle) {
  EXPECT_TRUE(greedy_cluster_indexed({}, {}).labels.empty());
  const std::vector<Sketch> one{Sketch(40, 1)};
  const auto result = greedy_cluster_indexed(one, {.theta = 0.5}, {.bands = 8});
  EXPECT_EQ(result.num_clusters, 1u);
}

TEST(GreedyClusterIndexed, LabelsAreDense) {
  const auto sketches = family_sketches(6, 6, 40, 0.3, 7);
  const auto result =
      greedy_cluster_indexed(sketches, {.theta = 0.6}, {.bands = 10});
  std::set<int> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), result.num_clusters);
  for (const int label : result.labels) EXPECT_GE(label, 0);
}

}  // namespace
}  // namespace mrmc::core

// Chaos tests: the headline fault-tolerance invariant.  For any FaultPlan
// that leaves at least one live node, a job's (and the pipeline's) output is
// byte-identical to the fault-free run — only the simulated timeline pays
// for killed attempts, invalidated map outputs, and blacklisted nodes.
//
// Scenarios: crash during the map phase, crash during the (barrier)
// shuffle, crash with recovery, a repeat offender crossing the blacklist
// threshold, seeded random plans, and a crash after the job would have
// finished (which must leave the timeline bit-for-bit untouched).  The CI
// chaos job re-runs the seeded-plan scenario under extra seeds via
// MRMC_CHAOS_SEED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "core/pipeline.hpp"
#include "mr/cluster.hpp"
#include "mr/faults.hpp"
#include "mr/job.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simdata/datasets.hpp"

namespace mrmc::mr {
namespace {

using CountJob = Job<long, long, long, std::pair<long, long>>;

CountJob::Mapper histogram_mapper() {
  return [](const long& record, Emitter<long, long>& emit) {
    emit.emit(record, 1);
    emit.count("records.mapped");
  };
}

CountJob::Reducer sum_reducer() {
  return [](const long& key, std::vector<long>& values,
            std::vector<std::pair<long, long>>& out) {
    long total = 0;
    for (const long v : values) total += v;
    out.emplace_back(key, total);
  };
}

/// Strictly distinct split sizes: unique task durations, no scheduling ties.
std::vector<std::vector<long>> make_splits(std::size_t count,
                                           std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<std::vector<long>> splits(count);
  for (std::size_t s = 0; s < count; ++s) {
    splits[s].resize(5 + 3 * s);
    for (auto& value : splits[s]) value = static_cast<long>(rng.bounded(23));
  }
  return splits;
}

JobConfig chaos_config(const std::string& name) {
  JobConfig config;
  config.name = name;
  config.num_reducers = 4;
  config.cluster.nodes = 4;
  config.threads = 2;
  return config;
}

JobResult<std::pair<long, long>> run_with_plan(
    const std::string& name, const faults::FaultPlan& plan,
    const std::vector<std::vector<long>>& splits, bool overlapped = true) {
  auto config = chaos_config(name);
  config.fault_plan = plan;
  config.overlapped_shuffle = overlapped;
  CountJob job(config, histogram_mapper(), sum_reducer());
  const std::vector<int> nodes(splits.size(), -1);
  return job.run_splits(splits, nodes);
}

/// The executor's loss model: each map is pinned to node (index % nodes)
/// and re-executes once per crash of that node.
std::size_t expected_lost_reruns(const faults::FaultPlan& plan,
                                 std::size_t maps, std::size_t nodes) {
  std::size_t reruns = 0;
  for (std::size_t m = 0; m < maps; ++m) {
    reruns += plan.crash_count(static_cast<int>(m % nodes));
  }
  return reruns;
}

void expect_same_output(const JobResult<std::pair<long, long>>& faulted,
                        const JobResult<std::pair<long, long>>& baseline) {
  EXPECT_EQ(faulted.output, baseline.output);  // byte-identical, order included
  EXPECT_EQ(faulted.stats.counters, baseline.stats.counters);
  EXPECT_EQ(faulted.stats.reduce_groups, baseline.stats.reduce_groups);
  EXPECT_EQ(faulted.stats.shuffle_bytes, baseline.stats.shuffle_bytes);
}

void expect_consistent_accounting(const JobStats& stats) {
  const faults::FaultOutcome& outcome = stats.timeline.faults;
  EXPECT_EQ(stats.node_crashes, outcome.events.size());
  EXPECT_EQ(stats.killed_attempts, outcome.killed_attempts);
  EXPECT_EQ(stats.lost_map_outputs, outcome.lost_map_outputs);
  EXPECT_EQ(stats.blacklisted_nodes, outcome.blacklisted_nodes);
  // Every destroyed attempt is itemized with the matching kind.
  std::size_t killed = 0, lost = 0;
  for (const faults::LostAttempt& attempt : outcome.lost_attempts) {
    if (attempt.kind == "killed") ++killed;
    if (attempt.kind == "lost-output") ++lost;
    EXPECT_GE(attempt.end_s, attempt.start_s);
  }
  EXPECT_EQ(killed, outcome.killed_attempts);
  EXPECT_EQ(lost, outcome.lost_map_outputs);
}

TEST(Chaos, CrashDuringMapKillsAttemptsButNotTheAnswer) {
  const auto splits = make_splits(24, 61);
  const auto baseline = run_with_plan("chaos-map-base", {}, splits);

  // Node 1 dies half a second into the map phase (well before the shortest
  // task can finish): both of its occupied map slots lose their running
  // attempt, nothing has completed yet.
  const double crash_s = chaos_config("x").cluster.job_startup_s + 0.5;
  faults::FaultPlan plan({{1, crash_s, faults::kNever}});
  const auto faulted = run_with_plan("chaos-map", plan, splits);

  expect_same_output(faulted, baseline);
  expect_consistent_accounting(faulted.stats);
  EXPECT_EQ(faulted.stats.node_crashes, 1u);
  EXPECT_EQ(faulted.stats.killed_attempts, 2u);  // map_slots_per_node
  EXPECT_EQ(faulted.stats.lost_map_outputs, 0u);  // nothing had finished
  EXPECT_EQ(faulted.stats.lost_map_reruns,
            expected_lost_reruns(plan, splits.size(), 4));
  EXPECT_GT(faulted.stats.lost_map_reruns, 0u);
  // The lost work is re-paid in simulated time.
  EXPECT_GT(faulted.stats.timeline.total_s, baseline.stats.timeline.total_s);
}

TEST(Chaos, CrashDuringShuffleInvalidatesCompletedMapOutputs) {
  const auto splits = make_splits(16, 67);
  // Barrier shuffle: every map output is only safe once the aggregate
  // transfer completes, so a crash inside the shuffle window invalidates
  // every completed map on the dead node.
  const auto baseline =
      run_with_plan("chaos-shuffle-base", {}, splits, /*overlapped=*/false);
  const JobTimeline& base = baseline.stats.timeline;
  ASSERT_GT(base.shuffle_s, 0.0);
  const double crash_s =
      8.0 + base.map_phase.makespan_s + 0.5 * base.shuffle_s;

  faults::FaultPlan plan({{2, crash_s, faults::kNever}});
  const auto faulted =
      run_with_plan("chaos-shuffle", plan, splits, /*overlapped=*/false);

  expect_same_output(faulted, baseline);
  expect_consistent_accounting(faulted.stats);
  EXPECT_GT(faulted.stats.lost_map_outputs, 0u);  // fetch-failure path fired
  EXPECT_GT(faulted.stats.timeline.total_s, base.total_s);
}

TEST(Chaos, CrashWithRecoveryRejoinsAndStaysCorrect) {
  const auto splits = make_splits(20, 71);
  const auto baseline = run_with_plan("chaos-recover-base", {}, splits);

  faults::FaultPlan plan({{3, 9.0, 9.0 + 45.0}});
  const auto faulted = run_with_plan("chaos-recover", plan, splits);

  expect_same_output(faulted, baseline);
  expect_consistent_accounting(faulted.stats);
  ASSERT_EQ(faulted.stats.timeline.faults.events.size(), 1u);
  const faults::NodeDownEvent& event = faulted.stats.timeline.faults.events[0];
  EXPECT_FALSE(event.blacklisted);
  EXPECT_DOUBLE_EQ(event.recover_s, 54.0);  // finite: the node came back
  EXPECT_EQ(faulted.stats.blacklisted_nodes, 0u);
  EXPECT_GE(faulted.stats.timeline.total_s, baseline.stats.timeline.total_s);
}

TEST(Chaos, RepeatOffenderIsBlacklistedDespitePlannedRecoveries) {
  const auto splits = make_splits(20, 73);
  const auto baseline = run_with_plan("chaos-blacklist-base", {}, splits);

  // Three crashes of node 1 against the default max_node_failures = 2: the
  // third planned recovery is cancelled and the node never rejoins.
  faults::FaultPlan plan(
      {{1, 9.0, 20.0}, {1, 25.0, 40.0}, {1, 45.0, 60.0}});
  ASSERT_TRUE(plan.blacklists(1));
  const auto faulted = run_with_plan("chaos-blacklist", plan, splits);

  expect_same_output(faulted, baseline);
  expect_consistent_accounting(faulted.stats);
  EXPECT_EQ(faulted.stats.node_crashes, 3u);
  EXPECT_EQ(faulted.stats.blacklisted_nodes, 1u);
  const auto& events = faulted.stats.timeline.faults.events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[0].blacklisted);
  EXPECT_FALSE(events[1].blacklisted);
  EXPECT_TRUE(events[2].blacklisted);
  EXPECT_DOUBLE_EQ(events[2].recover_s, -1.0);
  EXPECT_EQ(faulted.stats.lost_map_reruns,
            expected_lost_reruns(plan, splits.size(), 4));
}

TEST(Chaos, SeededRandomPlansNeverChangeTheOutput) {
  const auto splits = make_splits(18, 79);
  const auto baseline = run_with_plan("chaos-random-base", {}, splits);
  const double horizon = 8.0 + baseline.stats.timeline.total_s;

  std::vector<std::uint64_t> seeds{11, 23, 47, 89, 131};
  if (const char* extra = std::getenv("MRMC_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(extra, nullptr, 10));
  }
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const faults::FaultPlan plan =
        faults::FaultPlan::random(seed, 4, 2, horizon);
    const auto faulted =
        run_with_plan("chaos-random-" + std::to_string(seed), plan, splits);
    expect_same_output(faulted, baseline);
    expect_consistent_accounting(faulted.stats);
    EXPECT_EQ(faulted.stats.node_crashes, plan.events().size());
    EXPECT_EQ(faulted.stats.lost_map_reruns,
              expected_lost_reruns(plan, splits.size(), 4));
    EXPECT_GE(faulted.stats.timeline.total_s,
              baseline.stats.timeline.total_s);
  }
}

TEST(Chaos, CrashAfterTheJobEndsLeavesTheTimelineUntouched) {
  const auto splits = make_splits(12, 83);
  const auto baseline = run_with_plan("chaos-late-base", {}, splits);
  const JobTimeline& base = baseline.stats.timeline;

  // The crash lands far beyond the job's last simulated instant: nothing to
  // kill, nothing to invalidate — the schedule must be bit-for-bit the
  // fault-free one even though the faulted code path ran.
  faults::FaultPlan plan({{2, 8.0 + base.total_s + 1000.0, faults::kNever}});
  const auto faulted = run_with_plan("chaos-late", plan, splits);

  expect_same_output(faulted, baseline);
  const JobTimeline& timeline = faulted.stats.timeline;
  EXPECT_EQ(timeline.map_phase.makespan_s, base.map_phase.makespan_s);
  EXPECT_EQ(timeline.shuffle_s, base.shuffle_s);
  EXPECT_EQ(timeline.reduce_phase.makespan_s, base.reduce_phase.makespan_s);
  EXPECT_EQ(timeline.total_s, base.total_s);
  ASSERT_EQ(timeline.map_phase.tasks.size(), base.map_phase.tasks.size());
  for (std::size_t i = 0; i < base.map_phase.tasks.size(); ++i) {
    EXPECT_EQ(timeline.map_phase.tasks[i].node, base.map_phase.tasks[i].node);
    EXPECT_EQ(timeline.map_phase.tasks[i].start_s,
              base.map_phase.tasks[i].start_s);
    EXPECT_EQ(timeline.map_phase.tasks[i].end_s,
              base.map_phase.tasks[i].end_s);
  }
  // The crash is still reported, just with no casualties.
  EXPECT_EQ(faulted.stats.node_crashes, 1u);
  EXPECT_EQ(faulted.stats.killed_attempts, 0u);
  EXPECT_EQ(faulted.stats.lost_map_outputs, 0u);
  EXPECT_TRUE(timeline.faults.lost_attempts.empty());
}

// --------------------------------------------------------------- pipeline

TEST(Chaos, PipelineClusteringIsByteIdenticalUnderFaults) {
  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = 60, .seed = 5});
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = 64, .canonical = true, .seed = 1};
  params.mode = core::Mode::kGreedy;
  params.theta = 0.34;

  core::ExecutionOptions clean;
  clean.threads = 2;
  const auto baseline = core::run_pipeline(sample.reads, params, clean);

  core::ExecutionOptions faulty = clean;
  faulty.fault_plan = faults::FaultPlan({{1, 10.0, faults::kNever}});
  const auto faulted = core::run_pipeline(sample.reads, params, faulty);

  EXPECT_EQ(faulted.labels, baseline.labels);
  EXPECT_EQ(faulted.num_clusters, baseline.num_clusters);
  EXPECT_GE(faulted.sim_total_s, baseline.sim_total_s);
  // The plan is threaded into every job of the pipeline.
  EXPECT_EQ(faulted.sketch_stats.node_crashes, 1u);
  EXPECT_EQ(faulted.cluster_stats.node_crashes, 1u);
}

// ------------------------------------------------- doctor ingestion parity

TEST(Chaos, DoctorFaultsSectionIsByteIdenticalAcrossIngestionPaths) {
  auto& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();

  ClusterConfig config;
  config.nodes = 3;
  const SimScheduler scheduler(config);
  std::vector<TaskSpec> maps;
  for (int i = 0; i < 9; ++i) {
    maps.push_back({40.0 + static_cast<double>(i), 1.5e6, 4e5, -1});
  }
  const std::vector<TaskSpec> reduces(4, {25.0, 2.0e6, 1.0e6, -1});

  // Fault-free dry run (untraced) to aim the crashes: one mid-map on node
  // 1, one inside the barrier shuffle on node 2.
  const JobTimeline dry =
      simulate_job(scheduler, maps, 1.0e8, reduces, "chaos dry");
  ASSERT_GT(dry.shuffle_s, 0.0);
  const faults::FaultPlan plan(
      {{1, config.job_startup_s + 0.4 * dry.map_phase.makespan_s,
        faults::kNever},
       {2,
        config.job_startup_s + dry.map_phase.makespan_s + 0.3 * dry.shuffle_s,
        faults::kNever}});

  tracer.set_enabled(true);
  const JobTimeline faulted =
      simulate_job(scheduler, maps, 1.0e8, {}, reduces, "chaos doctor", plan);
  const std::string trace_path =
      ::testing::TempDir() + "/mrmc_chaos_doctor_trace.json";
  tracer.set_output_path(trace_path);
  ASSERT_TRUE(tracer.flush());
  tracer.set_enabled(false);
  tracer.clear();

  ASSERT_FALSE(faulted.faults.empty());
  const obs::report::JobInput in_process =
      report_input(faulted, config, "chaos doctor", 1.0e8);
  ASSERT_EQ(in_process.fault_events.size(), faulted.faults.events.size());
  ASSERT_EQ(in_process.lost_attempts.size(),
            faulted.faults.lost_attempts.size());

  const std::vector<obs::report::JobReport> offline =
      obs::report::analyze_trace_file(trace_path);
  ASSERT_EQ(offline.size(), 1u);
  const obs::report::JobReport report = obs::report::analyze(in_process);
  EXPECT_FALSE(report.faults.empty());
  EXPECT_TRUE(report.has_finding("node-failures"));

  // The headline parity claim: the Faults section (and the whole report)
  // renders byte-identically from both ingestion paths.
  EXPECT_EQ(obs::report::to_json(report), obs::report::to_json(offline[0]));
  EXPECT_EQ(obs::report::to_text(report), obs::report::to_text(offline[0]));
}

}  // namespace
}  // namespace mrmc::mr

// Incremental clustering — absorb new reads into an existing clustering
// without re-running it, the operational mode for longitudinal studies
// where samples arrive sequencing-run by sequencing-run.  New reads are
// matched against existing cluster representatives through the LSH index
// (greedy semantics); unmatched reads found new clusters.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "core/lsh_index.hpp"
#include "core/minhash.hpp"

namespace mrmc::core {

class IncrementalClusterer {
 public:
  /// `hasher` defines the sketch space; `theta` and `estimator` follow
  /// Algorithm 1's join rule.
  IncrementalClusterer(MinHashParams hasher, GreedyParams greedy,
                       LshParams lsh = {});

  /// Add one read; returns its (possibly new) cluster label.
  int add(std::string_view seq);

  /// Add many reads; returns their labels in order.
  std::vector<int> add_all(std::span<const std::string_view> seqs);

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return representatives_.size();
  }
  [[nodiscard]] std::size_t num_reads() const noexcept { return reads_added_; }

  /// Sketch of the representative anchoring `label`.
  [[nodiscard]] const Sketch& representative_sketch(int label) const;

  /// Current per-cluster sizes, indexed by label.
  [[nodiscard]] const std::vector<std::size_t>& cluster_sizes() const noexcept {
    return sizes_;
  }

 private:
  MinHasher hasher_;
  GreedyParams greedy_;
  LshIndex index_;
  std::vector<Sketch> representatives_;        // raw sketches
  std::vector<Sketch> sorted_representatives_; // sorted-unique (set estimator)
  std::vector<std::size_t> sizes_;
  std::size_t reads_added_ = 0;
};

}  // namespace mrmc::core

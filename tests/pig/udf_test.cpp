#include "pig/udf.hpp"

#include <gtest/gtest.h>

#include "bio/kmer.hpp"
#include "common/error.hpp"
#include "core/greedy.hpp"

namespace mrmc::pig {
namespace {

Tuple seq_tuple(std::string seq, std::string id) {
  Tuple tuple;
  tuple.fields.emplace_back(std::move(seq));
  tuple.fields.emplace_back(std::move(id));
  return tuple;
}

TEST(StringGeneratorUdf, EncodesBasesToIntegers) {
  const StringGenerator udf;
  const Bag out = udf.exec(seq_tuple("ACGTN", "r1"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].get<std::vector<long>>(0),
            (std::vector<long>{0, 1, 2, 3, -1}));
  EXPECT_EQ(out[0].get<std::string>(1), "r1");
  EXPECT_STREQ(udf.name(), "StringGenerator");
}

TEST(TranslateToKmerUdf, MatchesBioKmerSet) {
  const StringGenerator encode;
  const TranslateToKmer translate(4);
  const std::string seq = "ACGTACGGTTAACG";
  const Bag encoded = encode.exec(seq_tuple(seq, "r"));
  const Bag out = translate.exec(encoded[0]);
  ASSERT_EQ(out.size(), 1u);

  const auto expected = bio::kmer_set(seq, {.k = 4});
  const auto& kmers = out[0].get<std::vector<long>>(0);
  ASSERT_EQ(kmers.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint64_t>(kmers[i]), expected[i]);
  }
}

TEST(TranslateToKmerUdf, AmbiguousCodesRestartWindow) {
  const TranslateToKmer translate(2);
  Tuple input;
  input.fields.emplace_back(std::vector<long>{0, 1, -1, 2, 3});  // AC N GT
  input.fields.emplace_back(std::string("r"));
  const Bag out = translate.exec(input);
  const auto& kmers = out[0].get<std::vector<long>>(0);
  EXPECT_EQ(kmers.size(), 2u);  // AC and GT only
}

TEST(TranslateToKmerUdf, RejectsBadK) {
  EXPECT_THROW(TranslateToKmer(0), common::InvalidArgument);
  EXPECT_THROW(TranslateToKmer(99), common::InvalidArgument);
}

TEST(CalculateMinwiseHashUdf, MatchesMinHasher) {
  const int k = 4;
  const std::size_t n = 16;
  const std::uint64_t seed = 3;
  const std::string seq = "ACGTACGGTTAACGGA";

  const StringGenerator encode;
  const TranslateToKmer translate(k);
  const CalculateMinwiseHash minwise(n, k, seed);
  const Bag out =
      minwise.exec(translate.exec(encode.exec(seq_tuple(seq, "r"))[0])[0]);
  ASSERT_EQ(out.size(), 1u);

  const core::MinHasher hasher({.kmer = k, .num_hashes = n, .seed = seed});
  const core::Sketch expected = hasher.sketch(seq);
  const auto& values = out[0].get<std::vector<long>>(0);
  ASSERT_EQ(values.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(static_cast<std::uint64_t>(values[i]), expected[i]);
  }
}

TEST(CalculateMinwiseHashUdf, CMinHashSchemeMatchesMinHasher) {
  const int k = 4;
  const std::size_t n = 16;
  const std::uint64_t seed = 3;
  const std::string seq = "ACGTACGGTTAACGGA";

  const StringGenerator encode;
  const TranslateToKmer translate(k);
  const CalculateMinwiseHash minwise(n, k, seed,
                                     core::SketchScheme::kCMinHash);
  const Bag out =
      minwise.exec(translate.exec(encode.exec(seq_tuple(seq, "r"))[0])[0]);
  ASSERT_EQ(out.size(), 1u);

  const core::MinHasher hasher({.kmer = k,
                                .num_hashes = n,
                                .seed = seed,
                                .scheme = core::SketchScheme::kCMinHash});
  const core::Sketch expected = hasher.sketch(seq);
  const auto& values = out[0].get<std::vector<long>>(0);
  ASSERT_EQ(values.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(static_cast<std::uint64_t>(values[i]), expected[i]);
  }
}

Bag make_minwise_group(const std::vector<std::string>& seqs) {
  const StringGenerator encode;
  const TranslateToKmer translate(4);
  const CalculateMinwiseHash minwise(16, 4, 3);
  Bag group;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    group.push_back(minwise.exec(translate.exec(
        encode.exec(seq_tuple(seqs[i], "r" + std::to_string(i)))[0])[0])[0]);
  }
  return group;
}

TEST(CalculatePairwiseSimilarityUdf, EmitsUpperTriangularRows) {
  const Bag group = make_minwise_group({"ACGTACGTACGT", "ACGTACGTACGT",
                                        "TTGGCCAATTGG"});
  Tuple input;
  input.fields.emplace_back(group);
  const CalculatePairwiseSimilarity udf(core::SketchEstimator::kComponentMatch);
  const Bag rows = udf.exec(input);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].get<std::vector<double>>(1).size(), 2u);
  EXPECT_EQ(rows[1].get<std::vector<double>>(1).size(), 1u);
  EXPECT_EQ(rows[2].get<std::vector<double>>(1).size(), 0u);
  // Reads 0 and 1 are identical sequences -> similarity 1.
  EXPECT_DOUBLE_EQ(rows[0].get<std::vector<double>>(1)[0], 1.0);
  EXPECT_EQ(rows[0].get<std::string>(2), "r0");
}

TEST(CalculatePairwiseSimilarityUdf, LshBackendKeepsRowShapeAndExactCells) {
  const std::vector<std::string> seqs{"ACGTACGTACGT", "ACGTACGTACGT",
                                      "TTGGCCAATTGG", "GGGGCCCCAAAA"};
  const Bag group = make_minwise_group(seqs);
  Tuple input;
  input.fields.emplace_back(group);
  const CalculatePairwiseSimilarity exact(core::SketchEstimator::kComponentMatch);
  core::candidates::Params params;
  params.backend = core::candidates::Backend::kLshBanded;
  const CalculatePairwiseSimilarity lsh(core::SketchEstimator::kComponentMatch,
                                        params, 0.9);

  const Bag exact_rows = exact.exec(input);
  const Bag lsh_rows = lsh.exec(input);
  ASSERT_EQ(lsh_rows.size(), exact_rows.size());
  for (std::size_t i = 0; i < lsh_rows.size(); ++i) {
    // Same tuple shape: row index, j > i similarity list, read id.
    EXPECT_EQ(lsh_rows[i].get<long>(0), exact_rows[i].get<long>(0));
    EXPECT_EQ(lsh_rows[i].get<std::string>(2), exact_rows[i].get<std::string>(2));
    const auto& sparse = lsh_rows[i].get<std::vector<double>>(1);
    const auto& dense = exact_rows[i].get<std::vector<double>>(1);
    ASSERT_EQ(sparse.size(), dense.size());
    // Candidate cells carry the exact value; non-candidates stay 0.
    for (std::size_t j = 0; j < sparse.size(); ++j) {
      if (sparse[j] != 0.0) EXPECT_DOUBLE_EQ(sparse[j], dense[j]);
    }
  }
  // The identical pair collides in every band, so its cell must be scored.
  EXPECT_DOUBLE_EQ(lsh_rows[0].get<std::vector<double>>(1)[0], 1.0);
}

TEST(AgglomerativeHierarchicalClusteringUdf, ClustersFromRows) {
  const Bag group =
      make_minwise_group({"ACGTACGTACGT", "ACGTACGTACGT", "TTGGCCAATTGG",
                          "TTGGCCAATTGG"});
  Tuple grouped;
  grouped.fields.emplace_back(group);
  const CalculatePairwiseSimilarity sim(core::SketchEstimator::kComponentMatch);
  Tuple rows_tuple;
  rows_tuple.fields.emplace_back(sim.exec(grouped));

  const AgglomerativeHierarchicalClustering cluster(core::Linkage::kAverage, 0.5);
  const Bag labels = cluster.exec(rows_tuple);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0].get<long>(1), labels[1].get<long>(1));
  EXPECT_EQ(labels[2].get<long>(1), labels[3].get<long>(1));
  EXPECT_NE(labels[0].get<long>(1), labels[2].get<long>(1));
  EXPECT_EQ(labels[0].get<std::string>(0), "r0");
}

TEST(GreedyClusteringUdf, MatchesCoreGreedy) {
  const std::vector<std::string> seqs{"ACGTACGTACGT", "ACGTACGTACGT",
                                      "TTGGCCAATTGG"};
  const Bag group = make_minwise_group(seqs);
  Tuple input;
  input.fields.emplace_back(group);
  const GreedyClustering udf(0.5, core::SketchEstimator::kSetBased);
  const Bag labels = udf.exec(input);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0].get<long>(1), labels[1].get<long>(1));
  EXPECT_NE(labels[0].get<long>(1), labels[2].get<long>(1));
}

TEST(ClusteringUdfs, RejectBadCutoff) {
  EXPECT_THROW(GreedyClustering(1.5, core::SketchEstimator::kSetBased),
               common::InvalidArgument);
  EXPECT_THROW(
      AgglomerativeHierarchicalClustering(core::Linkage::kSingle, -0.1),
      common::InvalidArgument);
}

}  // namespace
}  // namespace mrmc::pig

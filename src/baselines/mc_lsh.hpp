// MC-LSH — the authors' earlier greedy clustering with locality-sensitive
// hashing (Rasheed, Rangwala & Barbara 2012; refs [17, 18] of the paper).
//
// Each sequence gets a minhash signature; signatures are split into
// `bands` bands of equal width, and a query is a candidate for a cluster
// if any band hashes into the same bucket as the cluster representative.
// Candidates are verified with the *exact* k-mer-set Jaccard similarity
// (not the sketch estimate) — which is why MC-LSH matches MrMC-MinH's
// quality in Tables IV/V while being ~50-80x slower than the sketch-only
// greedy variant.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/baseline.hpp"

namespace mrmc::baselines {

struct McLshParams {
  double theta = 0.95;        ///< exact-Jaccard join threshold
  int kmer = 15;              ///< feature word size
  std::size_t num_hashes = 50;
  std::size_t bands = 10;     ///< must divide num_hashes
  std::uint64_t seed = 1;
};

BaselineResult mclsh_cluster(std::span<const bio::FastaRecord> reads,
                             const McLshParams& params = {});

}  // namespace mrmc::baselines

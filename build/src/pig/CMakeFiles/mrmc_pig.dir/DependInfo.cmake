
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pig/pig.cpp" "src/pig/CMakeFiles/mrmc_pig.dir/pig.cpp.o" "gcc" "src/pig/CMakeFiles/mrmc_pig.dir/pig.cpp.o.d"
  "/root/repo/src/pig/script.cpp" "src/pig/CMakeFiles/mrmc_pig.dir/script.cpp.o" "gcc" "src/pig/CMakeFiles/mrmc_pig.dir/script.cpp.o.d"
  "/root/repo/src/pig/udf.cpp" "src/pig/CMakeFiles/mrmc_pig.dir/udf.cpp.o" "gcc" "src/pig/CMakeFiles/mrmc_pig.dir/udf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/mrmc_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/mrmc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrmc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mr_tests.
# This may be replaced when dependencies are built.

#include "bio/kmer.hpp"

#include <algorithm>
#include <string>

#include "bio/dna.hpp"
#include "common/error.hpp"

namespace mrmc::bio {

std::uint64_t revcomp_kmer(std::uint64_t kmer, int k) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < k; ++i) {
    out = (out << 2) | (3 - (kmer & 3));
    kmer >>= 2;
  }
  return out;
}

namespace {

/// Shared rolling-window body of extract_kmers / kmer_set_into: appends every
/// k-mer of `seq` to `out` without clearing it.
void append_kmers(std::string_view seq, const KmerParams& params,
                  std::vector<std::uint64_t>& out) {
  MRMC_REQUIRE(params.k >= 1 && params.k <= kMaxKmerK, "k must be in [1, 31]");
  const int k = params.k;
  if (seq.size() < static_cast<std::size_t>(k)) return;
  out.reserve(out.size() + seq.size() - k + 1);

  const std::uint64_t mask =
      (k == 32) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (2 * k)) - 1);
  std::uint64_t word = 0;
  int filled = 0;  // valid bases currently in the rolling window
  for (const char c : seq) {
    const int code = encode_base(c);
    if (code < 0) {
      filled = 0;  // ambiguous base: restart the window after it
      word = 0;
      continue;
    }
    word = ((word << 2) | static_cast<std::uint64_t>(code)) & mask;
    if (++filled >= k) {
      if (params.canonical) {
        out.push_back(std::min(word, revcomp_kmer(word, k)));
      } else {
        out.push_back(word);
      }
    }
  }
}

}  // namespace

std::vector<std::uint64_t> extract_kmers(std::string_view seq,
                                         const KmerParams& params) {
  std::vector<std::uint64_t> out;
  append_kmers(seq, params, out);
  return out;
}

std::vector<std::uint64_t> kmer_set(std::string_view seq, const KmerParams& params) {
  std::vector<std::uint64_t> kmers;
  kmer_set_into(seq, params, kmers);
  return kmers;
}

void kmer_set_into(std::string_view seq, const KmerParams& params,
                   std::vector<std::uint64_t>& out) {
  out.clear();
  append_kmers(seq, params, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

double exact_jaccard(std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b) noexcept {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::string decode_kmer(std::uint64_t kmer, int k) {
  MRMC_REQUIRE(k >= 1 && k <= kMaxKmerK, "k must be in [1, 31]");
  std::string out(static_cast<std::size_t>(k), 'A');
  for (int i = k - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = decode_base(static_cast<int>(kmer & 3));
    kmer >>= 2;
  }
  return out;
}

}  // namespace mrmc::bio

#include "obs/log.hpp"

#include <algorithm>
#include <cstdlib>

namespace mrmc::obs {

namespace {

/// key=value needs quoting when the value has spaces, quotes, or '='.
bool needs_quoting(std::string_view value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\t' || c == '\n') return true;
  }
  return false;
}

void append_value(std::string& out, std::string_view value) {
  if (!needs_quoting(value)) {
    out.append(value);
    return;
  }
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  out.push_back('"');
}

class StderrSink final : public LogSink {
 public:
  void write(const LogRecord& record) override {
    const std::string line = record.format();
    std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(stderr, "%s\n", line.c_str());
  }

 private:
  std::mutex mutex_;
};

StderrSink& stderr_sink() {
  static StderrSink sink;
  return sink;
}

}  // namespace

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_level(std::string_view text, LogLevel fallback) noexcept {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return fallback;
}

std::string LogRecord::format() const {
  std::string out;
  out.reserve(64 + fields.size() * 16);
  out.append("level=").append(level_name(level));
  out.append(" logger=");
  append_value(out, logger);
  out.append(" msg=");
  // Messages are prose: always quote for a stable grammar.
  out.push_back('"');
  for (const char c : message) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c == '\n' ? ' ' : c);
  }
  out.push_back('"');
  for (const LogField& f : fields) {
    out.push_back(' ');
    out.append(f.key);
    out.push_back('=');
    append_value(out, f.value);
  }
  return out;
}

std::string_view LogRecord::field(std::string_view key) const noexcept {
  for (const LogField& f : fields) {
    if (f.key == key) return f.value;
  }
  return {};
}

void CaptureSink::write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
}

std::vector<LogRecord> CaptureSink::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t CaptureSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void CaptureSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

LogConfig::LogConfig() {
  if (const char* spec = std::getenv("MRMC_LOG")) configure(spec);
}

LogConfig& LogConfig::global() {
  static LogConfig config;
  return config;
}

LogLevel LogConfig::level_for(std::string_view logger) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t best_len = 0;
  LogLevel best = default_level_;
  for (const auto& [prefix, level] : rules_) {
    if (prefix.size() >= best_len && logger.substr(0, prefix.size()) == prefix) {
      best_len = prefix.size();
      best = level;
    }
  }
  return best;
}

void LogConfig::set_default_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_level_ = level;
  recompute_min_locked();
}

void LogConfig::set_rule(std::string logger_prefix, LogLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [prefix, rule_level] : rules_) {
    if (prefix == logger_prefix) {
      rule_level = level;
      recompute_min_locked();
      return;
    }
  }
  rules_.emplace_back(std::move(logger_prefix), level);
  recompute_min_locked();
}

void LogConfig::clear_rules() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  recompute_min_locked();
}

void LogConfig::configure(std::string_view spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(begin, end - begin);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        default_level_ = parse_level(item, default_level_);
      } else {
        rules_.emplace_back(std::string(item.substr(0, eq)),
                            parse_level(item.substr(eq + 1)));
      }
    }
    begin = end + 1;
  }
  recompute_min_locked();
}

void LogConfig::set_sink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void LogConfig::dispatch(const LogRecord& record) {
  LogSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sink = sink_;
  }
  if (sink == nullptr) sink = &stderr_sink();
  sink->write(record);
}

void LogConfig::recompute_min_locked() {
  int min = static_cast<int>(default_level_);
  for (const auto& [prefix, level] : rules_) {
    min = std::min(min, static_cast<int>(level));
  }
  min_level_.store(min, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view message,
                 std::initializer_list<LogField> fields) const {
  if (!enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.logger = name_;
  record.message = std::string(message);
  record.fields.assign(fields.begin(), fields.end());
  LogConfig::global().dispatch(record);
}

}  // namespace mrmc::obs

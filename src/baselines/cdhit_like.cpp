#include "baselines/cdhit_like.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/word_stats.hpp"
#include "bio/alignment.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace mrmc::baselines {

BaselineResult cdhit_cluster(std::span<const bio::FastaRecord> reads,
                             const CdHitParams& params) {
  MRMC_REQUIRE(params.identity > 0.0 && params.identity <= 1.0,
               "identity in (0, 1]");
  common::Stopwatch watch;
  BaselineResult result;
  result.labels.assign(reads.size(), -1);
  if (reads.empty()) return result;

  // Longest-first processing order (CD-HIT's defining heuristic: long
  // sequences become representatives, short ones fold into them).
  std::vector<std::size_t> order(reads.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return reads[a].seq.size() > reads[b].seq.size();
  });

  struct Representative {
    std::size_t read = 0;
    std::vector<std::uint16_t> words;
  };
  std::vector<Representative> reps;

  for (const std::size_t query : order) {
    const auto query_words = word_counts(reads[query].seq, params.word_size);
    int assigned = -1;
    for (std::size_t r = 0; r < reps.size(); ++r) {
      ++result.comparisons;
      const std::size_t needed =
          required_common_words(reads[reps[r].read].seq.size(),
                                reads[query].seq.size(), params.word_size,
                                params.identity);
      if (common_words(reps[r].words, query_words) < needed) continue;

      ++result.alignments;
      const double identity =
          bio::global_identity(reads[reps[r].read].seq, reads[query].seq,
                               {.band = params.band});
      if (identity >= params.identity) {
        assigned = static_cast<int>(r);
        break;  // CD-HIT joins the first qualifying representative
      }
    }
    if (assigned < 0) {
      assigned = static_cast<int>(reps.size());
      reps.push_back({query, query_words});
    }
    result.labels[query] = assigned;
  }

  result.num_clusters = reps.size();
  result.wall_s = watch.seconds();
  return result;
}

}  // namespace mrmc::baselines

#include "bio/fasta.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mrmc::bio {

namespace {

std::string first_token(std::string_view line) {
  const auto end = line.find_first_of(" \t");
  return std::string(line.substr(0, end));
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  FastaRecord current;
  bool in_record = false;

  auto flush = [&] {
    if (!in_record) return;
    if (current.seq.empty()) {
      throw common::IoError("fasta: record '" + current.id + "' has no sequence");
    }
    records.push_back(std::move(current));
    current = {};
  };

  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.front() == '>') {
      flush();
      in_record = true;
      current.header = line.substr(1);
      current.id = first_token(current.header);
      if (current.id.empty()) {
        throw common::IoError("fasta: record with empty id");
      }
    } else {
      if (!in_record) {
        throw common::IoError("fasta: sequence data before first header");
      }
      current.seq += line;
    }
  }
  flush();
  return records;
}

std::vector<FastaRecord> read_fasta_string(std::string_view text) {
  std::istringstream stream{std::string(text)};
  return read_fasta(stream);
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw common::IoError("fasta: cannot open '" + path + "'");
  return read_fasta(file);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width) {
  for (const auto& rec : records) {
    out << '>' << (rec.header.empty() ? rec.id : rec.header) << '\n';
    if (width == 0) {
      out << rec.seq << '\n';
    } else {
      for (std::size_t pos = 0; pos < rec.seq.size(); pos += width) {
        out << std::string_view(rec.seq).substr(pos, width) << '\n';
      }
    }
  }
}

std::string write_fasta_string(const std::vector<FastaRecord>& records,
                               std::size_t width) {
  std::ostringstream out;
  write_fasta(out, records, width);
  return out.str();
}

}  // namespace mrmc::bio

#include "bio/fastq.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrmc::bio {
namespace {

constexpr const char* kTwoRecords =
    "@r1 sample=a\nACGT\n+\nIIII\n@r2\nTTGG\n+\n!!II\n";

TEST(ReadFastq, ParsesRecords) {
  const auto records = read_fastq_string(kTwoRecords);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "r1");
  EXPECT_EQ(records[0].header, "r1 sample=a");
  EXPECT_EQ(records[0].seq, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(records[1].id, "r2");
}

TEST(ReadFastq, HandlesCrLf) {
  const auto records = read_fastq_string("@a\r\nAC\r\n+\r\nII\r\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, "AC");
  EXPECT_EQ(records[0].quality, "II");
}

TEST(ReadFastq, EmptyInput) { EXPECT_TRUE(read_fastq_string("").empty()); }

TEST(ReadFastq, RejectsMalformedRecords) {
  EXPECT_THROW(read_fastq_string("ACGT\n"), common::IoError);          // no '@'
  EXPECT_THROW(read_fastq_string("@a\nAC\n"), common::IoError);        // truncated
  EXPECT_THROW(read_fastq_string("@a\nAC\nII\nII\n"), common::IoError);  // no '+'
  EXPECT_THROW(read_fastq_string("@a\nACGT\n+\nII\n"), common::IoError);  // len
  EXPECT_THROW(read_fastq_string("@ \nAC\n+\nII\n"), common::IoError);  // empty id
}

TEST(ReadFastq, MissingFileThrows) {
  EXPECT_THROW(read_fastq_file("/does/not/exist.fq"), common::IoError);
}

TEST(WriteFastq, RoundTrip) {
  const auto records = read_fastq_string(kTwoRecords);
  EXPECT_EQ(read_fastq_string(write_fastq_string(records)), records);
}

TEST(PhredScore, KnownValues) {
  EXPECT_EQ(phred_score('!'), 0);   // '!' = 33
  EXPECT_EQ(phred_score('I'), 40);  // 'I' = 73
  EXPECT_EQ(phred_score('+'), 10);
}

TEST(PhredErrorProbability, KnownValues) {
  EXPECT_DOUBLE_EQ(phred_error_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(phred_error_probability(10), 0.1);
  EXPECT_DOUBLE_EQ(phred_error_probability(20), 0.01);
}

TEST(MeanErrorProbability, AveragesOverBases) {
  FastqRecord record{"r", "r", "ACGT", "IIII"};  // q40 -> 1e-4 each
  EXPECT_NEAR(mean_error_probability(record), 1e-4, 1e-9);
  record.quality = "!!!!";  // q0 -> p 1.0
  EXPECT_DOUBLE_EQ(mean_error_probability(record), 1.0);
  EXPECT_DOUBLE_EQ(mean_error_probability({"r", "r", "", ""}), 1.0);
}

TEST(ToFasta, DropsQuality) {
  const auto fasta = to_fasta(read_fastq_string(kTwoRecords));
  ASSERT_EQ(fasta.size(), 2u);
  EXPECT_EQ(fasta[0].id, "r1");
  EXPECT_EQ(fasta[0].seq, "ACGT");
}

TEST(QualityFilter, TrimsAtLowQualityTail) {
  // Quality drops below 10 ('+' = q10; '!' = q0) at position 4.
  const FastqRecord record{"r", "r", "ACGTACGT", "IIII!III"};
  std::size_t dropped = 0;
  const auto kept = quality_filter({record}, {.trim_quality = 10, .min_length = 2,
                                              .max_mean_error = 0.5},
                                   &dropped);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].seq, "ACGT");
  EXPECT_EQ(kept[0].quality, "IIII");
  EXPECT_EQ(dropped, 0u);
}

TEST(QualityFilter, DropsShortAfterTrim) {
  const FastqRecord record{"r", "r", "ACGTACGT", "II!IIIII"};
  std::size_t dropped = 0;
  const auto kept = quality_filter({record}, {.trim_quality = 10, .min_length = 5,
                                              .max_mean_error = 0.5},
                                   &dropped);
  EXPECT_TRUE(kept.empty());
  EXPECT_EQ(dropped, 1u);
}

TEST(QualityFilter, DropsHighMeanError) {
  const FastqRecord record{"r", "r", "ACGTACGT", "++++++++"};  // q10 -> p 0.1
  const auto kept = quality_filter(
      {record}, {.trim_quality = 5, .min_length = 2, .max_mean_error = 0.05});
  EXPECT_TRUE(kept.empty());
}

TEST(QualityFilter, KeepsCleanReads) {
  const auto records = read_fastq_string("@a\nACGTACGTACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIIIIIIIIIII\n");
  std::size_t dropped = 0;
  const auto kept = quality_filter(records, {}, &dropped);
  EXPECT_EQ(kept.size(), 1u);
  EXPECT_EQ(dropped, 0u);
}

}  // namespace
}  // namespace mrmc::bio

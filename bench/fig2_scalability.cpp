// Figure 2 reproduction — runtime of MrMC-MinH^h versus number of cluster
// nodes (2..12) and input size (1 K .. 10 M reads from benchmark S1).
//
// Two modes:
//  * analytic (default): the pipeline's deterministic cost models
//    (core::cost) generate the sketch-job and similarity-job task lists for
//    each (nodes, reads) point and the SimScheduler computes the makespan —
//    this is how we sweep to 10 M reads on one machine.  The model is the
//    same one the executed pipeline uses, validated against real execution
//    by tests and by --validate.
//  * --validate: additionally *executes* the pipeline at small sizes and
//    prints simulated vs measured wall time so the model's shape can be
//    checked end to end.
//
// Expected shape (paper): small inputs are flat in node count (no
// parallelism to exploit); large inputs keep improving through 12 nodes.
//
//   ./fig2_scalability [--max-reads=10000000] [--read-length=1000]
//       [--hashes=100] [--validate] [--seed=42]
//       [--trace=fig2.json]   # Chrome trace of every simulated job
//       [--metrics]           # print the obs metrics snapshot at the end
//       [--report=fig2.html]  # job-doctor report (bare --report: text)
//       [--bench-json[=path]] # machine-readable BENCH_fig2.json record
//       [--node-failures]     # makespan-vs-crash-count sweep at 4/8/12
//                             # nodes; writes BENCH_fig2_faults.json
//       [--faults-reads=N]    # input size for the fault sweep (default 1 M)
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "mr/cluster.hpp"
#include "mr/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

using namespace mrmc;

namespace {

/// One simulated pipeline run: the end-to-end time plus whatever the fault
/// schedule cost it (all zero for fault-free runs).
struct SimPoint {
  double total_s = 0.0;
  /// Longest job with more than one task — the window where a crash can
  /// actually cost something.  (The GROUP-ALL clustering job is a single
  /// reducer on the never-crashed node 0, so it is immune by construction.)
  double fault_horizon_s = 0.0;
  std::size_t killed_attempts = 0;
  std::size_t lost_map_outputs = 0;
  std::size_t node_crashes = 0;
  std::size_t blacklisted_nodes = 0;
};

/// Simulated end-to-end hierarchical-pipeline time for `reads` reads on
/// `nodes` nodes, built from the same cost models the executed pipeline
/// uses (sketch map work, similarity row work, dendrogram reduce work).
/// A non-empty `plan` injects the same node-failure schedule into each of
/// the three jobs (each job runs on its own clock, like the pipeline does).
SimPoint simulate_hierarchical(std::size_t reads, std::size_t read_length,
                               std::size_t hashes, std::size_t nodes,
                               const mr::faults::FaultPlan& plan = {}) {
  mr::ClusterConfig cluster;
  cluster.nodes = nodes;
  const mr::SimScheduler scheduler(cluster);
  const std::string tag =
      "[" + std::to_string(reads) + "r/" + std::to_string(nodes) + "n]";
  const auto run_job = [&](std::span<const mr::TaskSpec> maps, double bytes,
                           std::span<const mr::TaskSpec> reduces,
                           const std::string& name) {
    return plan.empty()
               ? simulate_job(scheduler, maps, bytes, reduces, name)
               : simulate_job(scheduler, maps, bytes, {}, reduces, name, plan);
  };

  const double read_bytes = static_cast<double>(read_length) + 48.0;
  const double sketch_bytes = core::cost::sketch_bytes(hashes);

  // --- Job 1: sketch.  One map task per 1024-read split.
  const std::size_t sketch_splits = std::max<std::size_t>(1, reads / 1024);
  const double reads_per_split =
      static_cast<double>(reads) / static_cast<double>(sketch_splits);
  std::vector<mr::TaskSpec> sketch_maps(
      sketch_splits,
      {reads_per_split * core::cost::sketch_work(read_length, hashes),
       reads_per_split * read_bytes, reads_per_split * sketch_bytes, -1});
  std::vector<mr::TaskSpec> sketch_reduces(
      cluster.reduce_slots(),
      {1e-6, static_cast<double>(reads) * sketch_bytes /
                 static_cast<double>(cluster.reduce_slots()),
       static_cast<double>(reads) * sketch_bytes /
           static_cast<double>(cluster.reduce_slots()),
       -1});
  const auto job1 =
      run_job(sketch_maps, static_cast<double>(reads) * sketch_bytes,
              sketch_reduces, "sketch " + tag);

  // --- Job 2: similarity matrix, row-partitioned.  Each map split covers a
  // contiguous row range; work is the number of pairs in the range.
  const std::size_t row_splits = cluster.map_slots() * 4;
  std::vector<mr::TaskSpec> sim_maps;
  sim_maps.reserve(row_splits);
  const double n = static_cast<double>(reads);
  double row_begin = 0;
  for (std::size_t s = 0; s < row_splits; ++s) {
    const double row_end = n * static_cast<double>(s + 1) /
                           static_cast<double>(row_splits);
    // sum over rows r in [begin,end) of (n - r - 1)
    const double rows = row_end - row_begin;
    const double pairs = rows * n - (row_end * row_end - row_begin * row_begin) / 2.0;
    sim_maps.push_back({pairs * core::cost::compare_work(hashes),
                        rows * sketch_bytes, pairs * 4.0, -1});
    row_begin = row_end;
  }
  const double matrix_bytes = n * (n - 1) / 2.0 * 4.0;
  std::vector<mr::TaskSpec> sim_reduces(
      cluster.reduce_slots(),
      {1e-6, matrix_bytes / static_cast<double>(cluster.reduce_slots()),
       matrix_bytes / static_cast<double>(cluster.reduce_slots()), -1});
  const auto job2 =
      run_job(sim_maps, matrix_bytes, sim_reduces, "similarity " + tag);

  // --- Job 3: clustering, single GROUP-ALL reducer.
  std::vector<mr::TaskSpec> cluster_reduce{
      {core::cost::dendrogram_work(reads), matrix_bytes, n * 8.0, -1}};
  const auto job3 = run_job({}, matrix_bytes, cluster_reduce, "cluster " + tag);

  SimPoint point;
  point.fault_horizon_s = std::max(job1.total_s, job2.total_s);
  for (const auto* job : {&job1, &job2, &job3}) {
    point.total_s += job->total_s;
    point.killed_attempts += job->faults.killed_attempts;
    point.lost_map_outputs += job->faults.lost_map_outputs;
    // Every job replays the same plan, so crash/blacklist counts repeat
    // per job rather than adding up.
    point.node_crashes =
        std::max(point.node_crashes, job->faults.events.size());
    point.blacklisted_nodes =
        std::max(point.blacklisted_nodes, job->faults.blacklisted_nodes);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::size_t max_reads = flags.num("max-reads", 10'000'000);
  const std::size_t read_length = flags.num("read-length", 1000);
  const std::size_t hashes = flags.num("hashes", 100);
  const std::uint64_t seed = flags.num("seed", 42);

  bench::apply_obs_flags(flags);
  // --bench-json needs per-point reports, so it implies the collector even
  // when no --report file was asked for.
  const bool bench_json = flags.flag("bench-json");
  auto& collector = obs::report::Collector::global();
  if (bench_json) collector.set_enabled(true);
  bench::BenchRecord record("fig2", {"reads", "nodes"});

  const std::vector<std::size_t> node_counts{2, 4, 6, 8, 10, 12};
  std::vector<std::size_t> read_counts;
  for (std::size_t reads = 1000; reads <= max_reads; reads *= 10) {
    read_counts.push_back(reads);
  }

  common::TextTable table({"# Reads", "2 nodes", "4 nodes", "6 nodes",
                           "8 nodes", "10 nodes", "12 nodes"});
  for (const std::size_t reads : read_counts) {
    std::vector<std::string> row{std::to_string(reads)};
    for (const std::size_t nodes : node_counts) {
      const std::size_t jobs_before = collector.size();
      const double seconds =
          simulate_hierarchical(reads, read_length, hashes, nodes).total_s;
      row.push_back(common::format_duration(seconds));
      if (bench_json) {
        // Aggregate the point's jobs (sketch, similarity, cluster) into one
        // record row: busy/capacity efficiency plus every finding id.
        const auto reports = collector.reports();
        double busy = 0.0, capacity = 0.0;
        std::string findings;
        for (std::size_t i = jobs_before; i < reports.size(); ++i) {
          const auto& report = reports[i];
          busy += report.map_phase.busy_s + report.reduce_phase.busy_s;
          capacity +=
              report.map_phase.makespan_s *
                  static_cast<double>(report.map_phase.slots) +
              report.reduce_phase.makespan_s *
                  static_cast<double>(report.reduce_phase.slots);
          for (const auto& finding : report.findings) {
            if (!findings.empty()) findings += ",";
            findings += finding.id;
          }
        }
        record.row()
            .num("reads", static_cast<long>(reads))
            .num("nodes", static_cast<long>(nodes))
            .num("sim_total_s", seconds)
            .num("parallel_efficiency", capacity > 0.0 ? busy / capacity : 0.0)
            .str("findings", findings);
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << "Figure 2 — simulated MrMC-MinH^h runtime vs nodes and reads\n"
            << "(S1-style reads of " << read_length << " bp, " << hashes
            << " hash functions; EMR M1-Large-calibrated cost model)\n";
  table.print(std::cout);

  if (flags.flag("validate")) {
    std::cout << "\nValidation — executed pipeline vs analytic model\n";
    common::TextTable check({"# Reads", "Nodes", "Model", "Pipeline sim",
                             "Wall (this host)"});
    for (const std::size_t reads : {400u, 800u}) {
      const auto& spec = simdata::whole_metagenome_spec("S1");
      const auto sample = simdata::build_whole_metagenome(
          spec, {.reads = reads, .read_length = read_length, .seed = seed});
      for (const std::size_t nodes : {2u, 8u}) {
        const auto result = bench::run_mrmc(sample, core::Mode::kHierarchical, 5,
                                            hashes, 0.5, nodes, seed);
        check.add_row(
            {std::to_string(reads), std::to_string(nodes),
             common::format_duration(
                 simulate_hierarchical(reads, read_length, hashes, nodes)
                     .total_s),
             common::format_duration(result.sim_s),
             common::format_duration(result.wall_s)});
      }
    }
    check.print(std::cout);
  }

  if (flags.flag("node-failures")) {
    // Makespan vs injected crash count: the fault-tolerance counterpart of
    // the scalability table.  Each point reruns the pipeline under a seeded
    // FaultPlan::random schedule.  The plan replays on every job's own
    // clock, so its horizon is the longest crashable fault-free job —
    // crashes then land while many tasks are in flight instead of in the
    // dead air after the shorter jobs finish.  Node 0 never crashes,
    // keeping every plan survivable.  Always written as
    // BENCH_fig2_faults.json for CI.
    const std::size_t fault_reads = flags.num("faults-reads", 1'000'000);
    bench::BenchRecord fault_record("fig2_faults",
                                    {"nodes", "crashes", "plan_seed"});
    common::TextTable fault_table({"Nodes", "Crashes", "Fault-free", "Faulted",
                                   "Slowdown", "Killed", "Lost outputs",
                                   "Blacklisted"});
    for (const std::size_t nodes : {4u, 8u, 12u}) {
      const SimPoint baseline =
          simulate_hierarchical(fault_reads, read_length, hashes, nodes);
      for (const std::size_t crashes : {0u, 1u, 2u, 3u}) {
        const std::uint64_t plan_seed = seed + 97 * nodes + crashes;
        const mr::faults::FaultPlan plan =
            crashes == 0 ? mr::faults::FaultPlan{}
                         : mr::faults::FaultPlan::random(
                               plan_seed, nodes, crashes,
                               baseline.fault_horizon_s);
        const SimPoint point =
            crashes == 0 ? baseline
                         : simulate_hierarchical(fault_reads, read_length,
                                                 hashes, nodes, plan);
        const double slowdown =
            baseline.total_s > 0.0 ? point.total_s / baseline.total_s : 1.0;
        char slowdown_text[32];
        std::snprintf(slowdown_text, sizeof(slowdown_text), "%.2fx", slowdown);
        fault_table.add_row({std::to_string(nodes), std::to_string(crashes),
                             common::format_duration(baseline.total_s),
                             common::format_duration(point.total_s),
                             slowdown_text,
                             std::to_string(point.killed_attempts),
                             std::to_string(point.lost_map_outputs),
                             std::to_string(point.blacklisted_nodes)});
        fault_record.row()
            .num("nodes", static_cast<long>(nodes))
            .num("crashes", static_cast<long>(crashes))
            .num("plan_seed", static_cast<long>(plan_seed))
            .num("fault_free_s", baseline.total_s)
            .num("faulted_s", point.total_s)
            .num("slowdown", slowdown)
            .num("killed_attempts", static_cast<long>(point.killed_attempts))
            .num("lost_map_outputs",
                 static_cast<long>(point.lost_map_outputs))
            .num("node_crashes", static_cast<long>(point.node_crashes))
            .num("blacklisted_nodes",
                 static_cast<long>(point.blacklisted_nodes));
      }
    }
    std::cout << "\nFault sweep — makespan vs injected node crashes ("
              << fault_reads << " reads)\n";
    fault_table.print(std::cout);
    if (fault_record.write(fault_record.default_path())) {
      std::cout << "wrote fault sweep record to " << fault_record.default_path()
                << "\n";
    }
  }

  if (bench_json) {
    const std::string bench_path = flags.str("bench-json", "1") == "1"
                                       ? record.default_path()
                                       : flags.str("bench-json", "");
    if (record.write(bench_path)) {
      std::cout << "\nwrote bench record to " << bench_path << "\n";
    }
  }
  bench::finish_obs(flags);
  return 0;
}

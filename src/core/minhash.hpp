// Minwise hashing (Section III-A/B of the paper).
//
// A sequence's k-mer feature set I_s is sketched with n universal hash
// functions h_i(x) = ((a_i·x + b_i) mod p) mod m (Carter-Wegman; Equation 5)
// — the i-th sketch component is min_{x in I_s} h_i(x).  By the minwise
// property (Equation 3) the probability that two sets share a component
// equals their Jaccard similarity, so sketches give an unbiased similarity
// estimate in O(n) instead of O(|I_s1| + |I_s2|).
//
// The paper describes two estimators and we implement both:
//  * kComponentMatch — fraction of positions i with equal minima (the
//    textbook estimator; unbiased),
//  * kSetBased — |set(s1^) ∩ set(s2^)| / |set(s1^) ∪ set(s2^)| over the
//    multisets of minwise values (Algorithm 1, line 9 — what the paper's
//    pseudo-code literally computes).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bio/kmer.hpp"

namespace mrmc::core {

/// Fixed-size sketch: the n minwise hash values of one sequence.
using Sketch = std::vector<std::uint64_t>;

/// Sentinel component for a sequence with an empty feature set (shorter than
/// k or all-ambiguous): no x exists to minimize over.
inline constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

enum class SketchEstimator {
  kComponentMatch,  ///< mean of [min_i(A) == min_i(B)]
  kSetBased,        ///< Jaccard of the sets of minwise values
};

/// Carter-Wegman universal hash family with p = 2^61 - 1 (Mersenne prime).
/// Parameters a_i ∈ [1, p), b_i ∈ [0, p) are drawn from a seeded PRNG.
class UniversalHashFamily {
 public:
  /// `m` is the outer modulus — the k-mer feature-space size 4^k per the
  /// paper; pass 0 to skip the outer mod (full 61-bit range, fewer
  /// collisions; used by the LSH baseline).
  UniversalHashFamily(std::size_t count, std::uint64_t m, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }
  [[nodiscard]] std::uint64_t modulus() const noexcept { return m_; }

  /// h_i(x).
  [[nodiscard]] std::uint64_t hash(std::size_t i, std::uint64_t x) const noexcept;

  static constexpr std::uint64_t kPrime = (std::uint64_t{1} << 61) - 1;

 private:
  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
  std::uint64_t m_;
};

struct MinHashParams {
  int kmer = 5;             ///< k-mer size (paper: 5 shotgun, 15 for 16S)
  std::size_t num_hashes = 100;  ///< sketch length n (paper: 100 / 50)
  bool canonical = false;   ///< strand-insensitive k-mers
  std::uint64_t seed = 1;   ///< hash-family seed
  /// Outer modulus m of Equation 5.  The paper sets m = 4^k (the feature-
  /// space size), but for small k that collapses all minima toward 0 and
  /// destroys the estimator (see DESIGN.md); 0 = full 61-bit hash range
  /// (recommended, default).  Set to bio::kmer_space_size(k) for
  /// paper-literal behaviour.
  std::uint64_t modulus = 0;
};

/// Computes sketches for sequences.  Thread-safe after construction.
class MinHasher {
 public:
  explicit MinHasher(MinHashParams params);

  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t sketch_size() const noexcept { return family_.size(); }

  /// Sketch of one sequence (Equation 4).
  [[nodiscard]] Sketch sketch(std::string_view seq) const;

  /// Sketch of an explicit feature set.
  [[nodiscard]] Sketch sketch_features(std::span<const std::uint64_t> features) const;

  /// Sketches for many sequences.
  [[nodiscard]] std::vector<Sketch> sketch_all(
      std::span<const std::string_view> seqs) const;

 private:
  MinHashParams params_;
  UniversalHashFamily family_;
};

/// Estimated Jaccard similarity of two sketches (must be equal length).
[[nodiscard]] double sketch_similarity(const Sketch& a, const Sketch& b,
                                       SketchEstimator estimator);

/// Component-match estimator (cheapest; used by the similarity matrix).
[[nodiscard]] double component_match_similarity(const Sketch& a,
                                                const Sketch& b) noexcept;

/// Set-based estimator of Algorithm 1 line 9.
[[nodiscard]] double set_based_similarity(const Sketch& a, const Sketch& b);

}  // namespace mrmc::core

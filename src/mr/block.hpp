// mr::BinaryBlock — the zero-copy binary columnar shuffle payload.
//
// Large jobs (sketch, similarity, verify) used to shuffle one
// vector<uint64_t> per record: an 8-byte header plus 8 bytes per component,
// per record, per hop.  A BinaryBlock instead carries one *split's* worth of
// fixed-width values as packed little-endian columns, so a map task emits a
// single value whose wire size is within one word of the information
// content.  The format is deliberately dumb:
//
//   header (32 bytes, little-endian):
//     u32 magic      'MRBB' (0x4242524d)
//     u32 version    1
//     u32 elem_bits  packed width ∈ {1, 2, 4, 8, 16, 32, 64}
//     u32 cols       number of columns
//     u64 rows       values per column
//     u64 checksum   FNV-1a over the five fields above + payload, mix64-final
//   payload:
//     cols × words_per_column() u64 words, column-major, where
//     words_per_column() = ceil(rows · elem_bits / 64).
//
// elem_bits always divides 64, so a value never straddles a word boundary:
// get() is one unaligned word load + shift, and a serialized block can be
// read in place (BinaryBlockView) without any decode pass.  Trailing pad
// bits of the last word of each column are zero, which keeps serialization
// deterministic and lets packed-compare kernels treat pad lanes as equal.
//
// The engine's byte accounting understands the format natively:
// approx_bytes(BinaryBlock) is the *exact* wire size (header + payload; see
// the member hooks picked up by mr/bytes.hpp), so shuffle-byte counters and
// the pipeline doctor report the real packed volume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "mr/bytes.hpp"

namespace mrmc::mr {

/// True for the packed widths the block format supports (divisors of 64, so
/// no value straddles a 64-bit word).
[[nodiscard]] constexpr bool valid_elem_bits(std::uint32_t bits) noexcept {
  return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16 ||
         bits == 32 || bits == 64;
}

/// Smallest byte-multiple lane width holding every value in [0, max_value] —
/// what count-carrying blocks use to size their columns.
[[nodiscard]] constexpr std::uint32_t min_lane_bits(
    std::uint64_t max_value) noexcept {
  if (max_value <= 0xff) return 8;
  if (max_value <= 0xffff) return 16;
  if (max_value <= 0xffff'ffff) return 32;
  return 64;
}

class BinaryBlock {
 public:
  static constexpr std::uint32_t kMagic = 0x4242524Du;  ///< "MRBB" on disk
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 32;

  BinaryBlock() = default;

  /// A zeroed rows × cols block of `elem_bits`-wide values.  Throws
  /// common::Error unless valid_elem_bits(elem_bits).
  BinaryBlock(std::uint32_t elem_bits, std::uint64_t rows, std::uint32_t cols);

  [[nodiscard]] std::uint32_t elem_bits() const noexcept { return elem_bits_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] std::size_t words_per_column() const noexcept { return wpc_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  [[nodiscard]] std::span<const std::uint64_t> column(
      std::uint32_t col) const noexcept {
    return {words_.data() + static_cast<std::size_t>(col) * wpc_, wpc_};
  }

  /// Pack `value` into (col, row).  The value is masked to elem_bits; callers
  /// that must not lose information should pre-check the width.
  void set(std::uint32_t col, std::uint64_t row, std::uint64_t value) noexcept {
    const std::uint32_t lanes = 64U / elem_bits_;
    const std::size_t word =
        static_cast<std::size_t>(col) * wpc_ + row / lanes;
    const std::uint32_t shift =
        static_cast<std::uint32_t>(row % lanes) * elem_bits_;
    const std::uint64_t mask = lane_mask();
    words_[word] = (words_[word] & ~(mask << shift)) |
                   ((value & mask) << shift);
  }

  [[nodiscard]] std::uint64_t get(std::uint32_t col,
                                  std::uint64_t row) const noexcept {
    const std::uint32_t lanes = 64U / elem_bits_;
    const std::size_t word =
        static_cast<std::size_t>(col) * wpc_ + row / lanes;
    const std::uint32_t shift =
        static_cast<std::uint32_t>(row % lanes) * elem_bits_;
    return (words_[word] >> shift) & lane_mask();
  }

  /// Exact wire size of serialize()'s output — the member hook mr/bytes.hpp
  /// dispatches to, so shuffle accounting sees the true packed volume.
  [[nodiscard]] double approx_serialized_bytes() const noexcept {
    return static_cast<double>(kHeaderBytes) +
           static_cast<double>(words_.size()) * 8.0;
  }

  /// Member hook for mr::stable_hash_append: shape then payload words, so
  /// blocks of different geometry never collide trivially.
  void stable_hash_into(StableHasher& hasher) const noexcept {
    const std::uint64_t shape[3] = {static_cast<std::uint64_t>(elem_bits_),
                                    rows_, static_cast<std::uint64_t>(cols_)};
    hasher.write(shape, sizeof(shape));
    hasher.write(words_.data(), words_.size() * sizeof(std::uint64_t));
  }

  /// The header checksum: FNV-1a over (magic, version, elem_bits, cols,
  /// rows) plus the payload words, mix64-finalized.
  [[nodiscard]] std::uint64_t checksum() const noexcept;

  /// Little-endian wire encoding (header + payload) per the format comment.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse + validate a serialized block (magic, version, width, geometry,
  /// checksum); throws common::Error on any mismatch.
  static BinaryBlock deserialize(std::span<const std::uint8_t> bytes);

  friend bool operator==(const BinaryBlock&, const BinaryBlock&) = default;

 private:
  [[nodiscard]] std::uint64_t lane_mask() const noexcept {
    return elem_bits_ >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << elem_bits_) - 1;
  }

  std::uint32_t elem_bits_ = 0;
  std::uint64_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::size_t wpc_ = 0;  ///< words per column = ceil(rows · elem_bits / 64)
  std::vector<std::uint64_t> words_;
};

/// Zero-copy read-only view over a serialized block: validates the header
/// and checksum once at construction, then get() reads straight out of the
/// caller's buffer with unaligned word loads — no copy, no decode pass.
/// The buffer must outlive the view.
class BinaryBlockView {
 public:
  explicit BinaryBlockView(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::uint32_t elem_bits() const noexcept { return elem_bits_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t words_per_column() const noexcept { return wpc_; }

  [[nodiscard]] std::uint64_t get(std::uint32_t col,
                                  std::uint64_t row) const noexcept {
    const std::uint32_t lanes = 64U / elem_bits_;
    const std::size_t word =
        static_cast<std::size_t>(col) * wpc_ + row / lanes;
    const std::uint32_t shift =
        static_cast<std::uint32_t>(row % lanes) * elem_bits_;
    std::uint64_t w = 0;  // unaligned load: the buffer has no alignment
    std::memcpy(&w, payload_ + word * sizeof(std::uint64_t), sizeof(w));
    const std::uint64_t mask = elem_bits_ >= 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << elem_bits_) - 1;
    return (w >> shift) & mask;
  }

 private:
  const std::uint8_t* payload_ = nullptr;
  std::uint32_t elem_bits_ = 0;
  std::uint64_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::size_t wpc_ = 0;
};

}  // namespace mrmc::mr

// Ablation — C-MinHash sketch compute, b-bit packed sketches, and the
// binary-columnar shuffle (scheme × b × K on a Table III-style S8 sample).
//
//  * sketch-compute throughput per scheme at several K; C-MinHash's shared
//    premultiply pass should beat the per-component universal family by
//    >= 1.5x at equal K,
//  * estimator quality: RMSE of the (corrected) b-bit match estimate
//    against exact k-mer-set Jaccard, per scheme x b,
//  * end-to-end pipeline rows per scheme x b: shuffle bytes actually
//    shuffled by the sketch / similarity / verify jobs under the
//    BinaryBlock format vs the legacy per-record wire model, LSH candidate
//    recall on the truncated sketches, and label fidelity (ARI) against the
//    same scheme at full width plus the exact-Jaccard baseline.
//
// The legacy wire model reproduces the pre-block accounting exactly
// (mr::approx_bytes over the old emitted shapes): sketches as
// (u32, vector<u64>) per read, similarity rows as (u32, vector<float>),
// verify pairs as (u64 key, double).
//
//   ./ablation_cminhash [--reads=200] [--pairs=1500] [--seed=42]
//                       [--hashes=100] [--repeats=5]
//                       [--bench-json[=path]]  write BENCH_cminhash.json
//                       [--compare-json]       also write the before/after
//                                              pair for `mrmc_doctor compare`
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "bio/kmer.hpp"
#include "core/hierarchical.hpp"
#include "core/kernels.hpp"
#include "eval/candidate_recall.hpp"
#include "eval/external_indices.hpp"

using namespace mrmc;

namespace {

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Time the minwise-hashing kernel over precomputed feature sets, median
/// of `repeats`.  K-mer extraction is deliberately excluded: it is
/// byte-for-byte identical under both schemes, so including it only
/// dilutes the quantity this ablation isolates (the per-(feature × hash)
/// hashing cost the C-MinHash premultiply amortizes).  The extraction cost
/// is timed once, separately, so the table still shows the end-to-end
/// context.
double sketch_seconds(const core::MinHasher& hasher,
                      const std::vector<std::vector<std::uint64_t>>& features,
                      int repeats) {
  std::vector<std::uint64_t> out(hasher.sketch_size());
  std::vector<double> runs;
  for (int r = 0; r < repeats; ++r) {
    common::Stopwatch watch;
    for (const auto& f : features) {
      hasher.sketch_features_into(f, out);
      if (out[0] == 0 && out.back() == 1) std::abort();  // un-elidable
    }
    runs.push_back(watch.seconds());
  }
  return median(std::move(runs));
}

/// One k-mer extraction pass over the sample (scheme-independent context
/// for the hash-only numbers above).
double extraction_seconds(const simdata::LabeledReads& sample, int repeats) {
  std::vector<std::uint64_t> scratch;
  std::vector<double> runs;
  for (int r = 0; r < repeats; ++r) {
    common::Stopwatch watch;
    for (const auto& read : sample.reads) {
      bio::kmer_set_into(read.seq, {.k = 5, .canonical = true}, scratch);
      if (scratch.empty()) std::abort();
    }
    runs.push_back(watch.seconds());
  }
  return median(std::move(runs));
}

struct PipelineCell {
  core::PipelineResult exact;  ///< similarity-job (all-pairs) path
  core::PipelineResult lsh;    ///< candidates + verify path
};

PipelineCell run_cell(const simdata::LabeledReads& sample,
                      core::SketchScheme scheme, std::size_t bits,
                      std::size_t hashes, std::uint64_t seed) {
  core::PipelineParams params;
  params.minhash = {.kmer = 5, .num_hashes = hashes, .canonical = true,
                    .seed = seed, .scheme = scheme};
  params.mode = core::Mode::kHierarchical;
  params.theta = 0.5;
  params.sketch_bits = bits;
  core::ExecutionOptions exec;
  exec.cluster.nodes = 8;

  PipelineCell cell;
  cell.exact = core::run_pipeline(sample.reads, params, exec);
  params.candidates.backend = core::candidates::Backend::kLshBanded;
  cell.lsh = core::run_pipeline(sample.reads, params, exec);
  return cell;
}

/// Pre-block shuffle accounting for the same exchange: per-read
/// (u32, vector<u64>) sketches, per-row (u32, vector<float>) similarities,
/// per-pair (u64, double) verify scores.
double legacy_sketch_bytes(std::size_t reads, std::size_t hashes) {
  return static_cast<double>(reads) *
         (4.0 + mr::kContainerHeaderBytes + 8.0 * static_cast<double>(hashes));
}
double legacy_similarity_bytes(std::size_t reads) {
  const double n = static_cast<double>(reads);
  const double pairs = n * (n - 1.0) / 2.0;
  return n * (4.0 + mr::kContainerHeaderBytes) + 4.0 * pairs;
}
double legacy_verify_bytes(double pairs_scored) { return 16.0 * pairs_scored; }

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  bench::apply_obs_flags(flags);
  const std::size_t reads = flags.num("reads", 200);
  const std::size_t pairs = flags.num("pairs", 1500);
  const std::uint64_t seed = flags.num("seed", 42);
  const std::size_t hashes = flags.num("hashes", 100);
  const int repeats = static_cast<int>(flags.num("repeats", 5));

  const auto sample = simdata::build_whole_metagenome(
      simdata::whole_metagenome_spec("S8"), {.reads = reads, .seed = seed});

  bench::BenchRecord record("cminhash", {"section", "scheme", "bits", "hashes"});

  // ------------------------------------------------ sketch-compute timing
  std::vector<std::vector<std::uint64_t>> feature_sets;
  feature_sets.reserve(sample.size());
  for (const auto& read : sample.reads) {
    feature_sets.push_back(bio::kmer_set(read.seq, {.k = 5, .canonical = true}));
  }
  const double extract_us = extraction_seconds(sample, repeats) * 1e6 /
                            static_cast<double>(sample.size());
  common::TextTable sketch_table(
      {"K", "universal us/read", "cminhash us/read", "speedup"});
  for (const std::size_t k : {64u, 100u, 200u}) {
    double per_scheme[2] = {0.0, 0.0};
    for (const auto scheme :
         {core::SketchScheme::kUniversal, core::SketchScheme::kCMinHash}) {
      const core::MinHasher hasher({.kmer = 5, .num_hashes = k,
                                    .canonical = true, .seed = seed,
                                    .scheme = scheme});
      per_scheme[scheme == core::SketchScheme::kCMinHash] =
          sketch_seconds(hasher, feature_sets, repeats);
    }
    const double us = 1e6 / static_cast<double>(sample.size());
    const double speedup = per_scheme[0] / per_scheme[1];
    sketch_table.add_row({std::to_string(k),
                          common::fmt_f(per_scheme[0] * us, 1),
                          common::fmt_f(per_scheme[1] * us, 1),
                          common::fmt_f(speedup, 2)});
    record.row()
        .str("section", "sketch")
        .str("scheme", "universal")
        .num("bits", 64L)
        .num("hashes", static_cast<long>(k))
        .num("sketch_us_per_read", per_scheme[0] * us)
        .num("kmer_extract_us_per_read", extract_us);
    record.row()
        .str("section", "sketch")
        .str("scheme", "cminhash")
        .num("bits", 64L)
        .num("hashes", static_cast<long>(k))
        .num("sketch_us_per_read", per_scheme[1] * us)
        .num("sketch_speedup", speedup);
  }

  // ------------------------------------------------------ estimator RMSE
  // Averaged over a few hash-draw seeds (same pair sample each time): a
  // single draw is noisy at this pair count, and C-MinHash rides one
  // permutation, so one seed can misrepresent the scheme either way.
  constexpr std::size_t kRmseSeeds = 3;
  common::TextTable rmse_table({"scheme", "b", "RMSE vs exact J"});
  for (const auto scheme :
       {core::SketchScheme::kUniversal, core::SketchScheme::kCMinHash}) {
    std::vector<std::vector<core::Sketch>> seeded_sketches;
    for (std::size_t si = 0; si < kRmseSeeds; ++si) {
      const core::MinHasher hasher({.kmer = 5, .num_hashes = hashes,
                                    .canonical = true, .seed = seed + si,
                                    .scheme = scheme});
      auto& sketches = seeded_sketches.emplace_back();
      sketches.reserve(sample.size());
      for (const auto& read : sample.reads) {
        sketches.push_back(hasher.sketch(read.seq));
      }
    }
    for (const std::size_t bits : {64u, 16u, 8u}) {
      const std::uint64_t mask = core::sketch_bits_mask(bits);
      common::Xoshiro256 rng(seed ^ bits);
      double sq = 0.0;
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t i = rng.bounded(sample.size());
        const std::size_t j = rng.bounded(sample.size());
        const double exact = bio::exact_jaccard(feature_sets[i], feature_sets[j]);
        for (const auto& sketches : seeded_sketches) {
          std::size_t matches = 0;
          for (std::size_t c = 0; c < hashes; ++c) {
            matches += (sketches[i][c] & mask) == (sketches[j][c] & mask);
          }
          const double estimate =
              core::corrected_match_similarity(matches, hashes, bits);
          sq += (estimate - exact) * (estimate - exact);
        }
      }
      const double rmse = std::sqrt(sq / static_cast<double>(pairs * kRmseSeeds));
      rmse_table.add_row({core::sketch_scheme_name(scheme),
                          std::to_string(bits), common::fmt_f(rmse, 4)});
      record.row()
          .str("section", "estimate")
          .str("scheme", core::sketch_scheme_name(scheme))
          .num("bits", static_cast<long>(bits))
          .num("hashes", static_cast<long>(hashes))
          .num("estimate_rmse", rmse);
    }
  }

  // ------------------------------------------- pipeline rows: scheme × b
  // Exact-Jaccard hierarchical labels: the sketch-free reference.
  std::vector<int> exact_labels;
  {
    core::SimilarityMatrix matrix(sample.size());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      matrix.set(i, i, 1.0F);
      for (std::size_t j = i + 1; j < sample.size(); ++j) {
        matrix.set(i, j, static_cast<float>(bio::exact_jaccard(
                             feature_sets[i], feature_sets[j])));
      }
    }
    exact_labels =
        core::cut_dendrogram(core::agglomerate(matrix, core::Linkage::kAverage), 0.5);
  }

  common::TextTable pipe_table({"scheme", "b", "ARI vs b=64", "ARI vs exact",
                                "recall", "sketch KB", "sim KB", "verify KB",
                                "sim x", "verify x"});
  struct CompareRow {
    double sketch_bytes, similarity_bytes, verify_bytes;
  };
  CompareRow before{}, after{};
  std::vector<std::string_view> seqs;
  for (const auto& read : sample.reads) seqs.emplace_back(read.seq);
  constexpr std::size_t kBitGrid[3] = {64, 16, 8};
  // Quality metrics (ARI, recall) are averaged over a few sketch seeds:
  // both schemes share one hash draw per seed, and C-MinHash in particular
  // rides a single permutation — one globally lucky or unlucky draw can
  // swing ARI-vs-exact by ±0.2 on a boundary-dense sample, which a single
  // seed would misreport as a scheme difference.  Shuffle-byte metrics are
  // seed-independent shapes, so they come from the base seed only.
  constexpr std::size_t kQualitySeeds = 3;
  for (const auto scheme :
       {core::SketchScheme::kUniversal, core::SketchScheme::kCMinHash}) {
    const bool cmin = scheme == core::SketchScheme::kCMinHash;
    struct Cell {
      double ari_full = 0.0, ari_exact = 0.0, recall = 0.0;
      double sketch_b = 0.0, sim_b = 0.0, verify_b = 0.0, legacy_verify = 0.0;
    };
    Cell cells[3];
    for (std::size_t si = 0; si < kQualitySeeds; ++si) {
      const std::uint64_t qseed = seed + si;
      std::vector<int> fw_labels;
      for (std::size_t bi = 0; bi < 3; ++bi) {
        const std::size_t bits = kBitGrid[bi];
        const PipelineCell cell = run_cell(sample, scheme, bits, hashes, qseed);
        if (bits == 64) fw_labels = cell.exact.labels;
        cells[bi].ari_full +=
            eval::adjusted_rand_index(cell.exact.labels, fw_labels) /
            kQualitySeeds;
        cells[bi].ari_exact +=
            eval::adjusted_rand_index(cell.exact.labels, exact_labels) /
            kQualitySeeds;

        // LSH recall on the truncated sketches, at the pipeline's effective
        // component-match threshold for this b.
        const core::MinHasher hasher({.kmer = 5, .num_hashes = hashes,
                                      .canonical = true, .seed = qseed,
                                      .scheme = scheme});
        core::kernels::SketchMatrix matrix = hasher.sketch_matrix(seqs);
        if (bits < 64) {
          core::kernels::mask_components(matrix, core::sketch_bits_mask(bits));
        }
        core::candidates::Params lsh_params;
        lsh_params.backend = core::candidates::Backend::kLshBanded;
        const auto recall_report = eval::candidate_recall(
            matrix, core::bbit_adjusted_threshold(0.5, bits), lsh_params,
            core::SketchEstimator::kComponentMatch);
        cells[bi].recall += recall_report.recall / kQualitySeeds;

        if (si == 0) {
          cells[bi].sketch_b = cell.exact.sketch_stats.shuffle_bytes;
          cells[bi].sim_b = cell.exact.similarity_stats.shuffle_bytes;
          cells[bi].verify_b = cell.lsh.verify_stats.shuffle_bytes;
          cells[bi].legacy_verify = legacy_verify_bytes(
              cell.lsh.verify_stats.counters.at("verify.pairs_scored"));
        }
      }
    }
    for (std::size_t bi = 0; bi < 3; ++bi) {
      const std::size_t bits = kBitGrid[bi];
      const Cell& c = cells[bi];
      const double legacy_sketch = legacy_sketch_bytes(sample.size(), hashes);
      const double legacy_sim = legacy_similarity_bytes(sample.size());
      const double sim_reduction = legacy_sim / c.sim_b;
      const double verify_reduction = c.legacy_verify / c.verify_b;

      if (!cmin && bits == 64) {
        before = {legacy_sketch, legacy_sim, c.legacy_verify};
      }
      if (cmin && bits == 8) after = {c.sketch_b, c.sim_b, c.verify_b};

      pipe_table.add_row(
          {core::sketch_scheme_name(scheme), std::to_string(bits),
           common::fmt_f(c.ari_full, 4), common::fmt_f(c.ari_exact, 4),
           common::fmt_f(c.recall, 4), common::fmt_f(c.sketch_b / 1024.0, 1),
           common::fmt_f(c.sim_b / 1024.0, 1),
           common::fmt_f(c.verify_b / 1024.0, 1),
           common::fmt_f(sim_reduction, 1), common::fmt_f(verify_reduction, 1)});
      record.row()
          .str("section", "pipeline")
          .str("scheme", core::sketch_scheme_name(scheme))
          .num("bits", static_cast<long>(bits))
          .num("hashes", static_cast<long>(hashes))
          .num("ari_accuracy", c.ari_full)
          .num("ari_vs_exact_accuracy", c.ari_exact)
          .num("candidate_recall_accuracy", c.recall)
          .num("sketch_shuffle_bytes", c.sketch_b)
          .num("similarity_shuffle_bytes", c.sim_b)
          .num("verify_shuffle_bytes", c.verify_b)
          .num("legacy_similarity_model_bytes", legacy_sim)
          .num("legacy_verify_model_bytes", c.legacy_verify)
          .num("similarity_bytes_reduction", sim_reduction)
          .num("verify_bytes_reduction", verify_reduction)
          .str("backend", core::kernels::backend_name(
                              core::kernels::active_backend()));
    }
  }

  std::cout << "Ablation — C-MinHash + b-bit packed shuffle (S8, " << reads
            << " reads, K=" << hashes << ")\n\nSketch compute (median of "
            << repeats << "; hash kernel only — k-mer extraction is "
            << "scheme-independent, " << common::fmt_f(extract_us, 1)
            << " us/read on top of either column)\n";
  sketch_table.print(std::cout);
  std::cout << "\nEstimate quality\n";
  rmse_table.print(std::cout);
  std::cout << "\nPipeline (hierarchical θ=0.5; bytes are per-job shuffle "
               "totals; x = legacy wire model / BinaryBlock)\n";
  pipe_table.print(std::cout);

  if (flags.flag("bench-json")) {
    const std::string json = flags.str("bench-json", "");
    const std::string path =
        json.empty() || json == "1" ? record.default_path() : json;
    if (!record.write(path)) {
      std::cerr << "failed to write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  if (flags.flag("compare-json")) {
    // Before/after pair for `mrmc_doctor compare`: the legacy wire model at
    // (universal, b=64) vs the packed blocks at (cminhash, b=8).
    const auto write_side = [&](const std::string& path, const char* scheme,
                                long bits, const CompareRow& side) {
      bench::BenchRecord one("cminhash", {"section", "scheme", "bits", "hashes"});
      one.row()
          .str("section", "shuffle")
          .str("scheme", scheme)
          .num("bits", bits)
          .num("hashes", static_cast<long>(hashes))
          .num("sketch_shuffle_bytes", side.sketch_bytes)
          .num("similarity_shuffle_bytes", side.similarity_bytes)
          .num("verify_shuffle_bytes", side.verify_bytes);
      return one.write(path);
    };
    // Both sides use the same key values so compare matches them row-to-row.
    if (!write_side("BENCH_cminhash_before.json", "any", 0, before) ||
        !write_side("BENCH_cminhash_after.json", "any", 0, after)) {
      std::cerr << "failed to write compare pair\n";
      return 1;
    }
    std::cout << "wrote BENCH_cminhash_before.json / BENCH_cminhash_after.json\n";
  }
  bench::finish_obs(flags);
  return 0;
}

#include "simdata/genome.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "bio/dna.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace mrmc::simdata {

using common::Xoshiro256;

const char* taxon_rank_name(TaxonRank rank) noexcept {
  switch (rank) {
    case TaxonRank::kStrain: return "Strain";
    case TaxonRank::kSpecies: return "Species";
    case TaxonRank::kGenus: return "Genus";
    case TaxonRank::kFamily: return "Family";
    case TaxonRank::kOrder: return "Order";
    case TaxonRank::kPhylum: return "Phylum";
    case TaxonRank::kKingdom: return "Kingdom";
  }
  return "?";
}

double taxon_divergence(TaxonRank rank) noexcept {
  switch (rank) {
    case TaxonRank::kStrain: return 0.01;
    case TaxonRank::kSpecies: return 0.04;
    case TaxonRank::kGenus: return 0.10;
    case TaxonRank::kFamily: return 0.18;
    case TaxonRank::kOrder: return 0.28;
    case TaxonRank::kPhylum: return 0.42;
    case TaxonRank::kKingdom: return 0.60;
  }
  return 0.0;
}

double Genome::gc() const noexcept { return bio::gc_content(seq); }

namespace {

/// Draw a base with P(G or C) = gc; A/T and G/C symmetric.
char draw_base(Xoshiro256& rng, double gc) {
  const bool strong = rng.chance(gc);  // G or C
  if (strong) return rng.chance(0.5) ? 'G' : 'C';
  return rng.chance(0.5) ? 'A' : 'T';
}

/// Draw a base different from `original`, still GC-weighted.
char draw_substitute(Xoshiro256& rng, double gc, char original) {
  for (;;) {
    const char b = draw_base(rng, gc);
    if (b != original) return b;
  }
}

}  // namespace

Genome random_genome(std::string name, std::size_t length, double gc,
                     std::uint64_t seed) {
  MRMC_REQUIRE(gc >= 0.0 && gc <= 1.0, "gc must be in [0, 1]");
  Xoshiro256 rng(seed);
  Genome genome;
  genome.name = std::move(name);
  genome.seq.reserve(length);
  for (std::size_t i = 0; i < length; ++i) genome.seq.push_back(draw_base(rng, gc));
  return genome;
}

Genome mutate_genome(const Genome& parent, std::string name, double subst_rate,
                     double indel_rate, std::uint64_t seed) {
  MRMC_REQUIRE(subst_rate >= 0.0 && subst_rate <= 1.0, "subst_rate in [0, 1]");
  MRMC_REQUIRE(indel_rate >= 0.0 && indel_rate <= 1.0, "indel_rate in [0, 1]");
  Xoshiro256 rng(seed);
  const double gc = parent.gc();

  Genome genome;
  genome.name = std::move(name);
  genome.seq.reserve(parent.seq.size() + 16);
  for (const char c : parent.seq) {
    if (indel_rate > 0.0 && rng.chance(indel_rate)) {
      if (rng.chance(0.5)) {
        genome.seq.push_back(draw_base(rng, gc));  // insertion before c
        genome.seq.push_back(c);
      }
      // else: deletion of c
      continue;
    }
    if (subst_rate > 0.0 && rng.chance(subst_rate)) {
      genome.seq.push_back(draw_substitute(rng, gc, c));
    } else {
      genome.seq.push_back(c);
    }
  }
  return genome;
}

namespace {

/// Draw a Dirichlet(concentration) row of 4 weights via Gamma sampling
/// (Marsaglia-Tsang for shape < 1 uses the boost trick u^(1/a)).
void draw_dirichlet_row(double row[4], double concentration, double gc_bias,
                        Xoshiro256& rng) {
  double total = 0.0;
  for (int b = 0; b < 4; ++b) {
    // Gamma(a) sample via Johnk-ish approximation adequate for composition
    // modeling: X = -log(u1) * u2^(1/a) has the right sparsity behaviour.
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = std::max(rng.uniform(), 1e-12);
    double x = -std::log(u1) * std::pow(u2, 1.0 / concentration);
    // GC bias: scale strong (C=1, G=2) bases.
    const bool strong = (b == 1 || b == 2);
    x *= strong ? gc_bias : (1.0 - gc_bias);
    row[b] = x;
    total += x;
  }
  for (int b = 0; b < 4; ++b) row[b] /= total;
}

}  // namespace

MarkovGenomeModel::MarkovGenomeModel(double gc, double concentration,
                                     std::uint64_t seed) {
  MRMC_REQUIRE(gc > 0.0 && gc < 1.0, "gc in (0, 1)");
  MRMC_REQUIRE(concentration > 0.0, "concentration must be positive");
  gc_ = gc;
  Xoshiro256 rng(seed);
  for (std::size_t context = 0; context < kContexts; ++context) {
    draw_dirichlet_row(rows_[context], concentration, gc, rng);
  }
}

MarkovGenomeModel MarkovGenomeModel::derive_child(double mix,
                                                  std::uint64_t seed) const {
  MRMC_REQUIRE(mix >= 0.0 && mix <= 1.0, "mix in [0, 1]");
  MarkovGenomeModel child;
  child.gc_ = gc_;
  Xoshiro256 rng(seed);
  for (std::size_t context = 0; context < kContexts; ++context) {
    double fresh[4];
    draw_dirichlet_row(fresh, 0.5, gc_, rng);
    double total = 0.0;
    for (int b = 0; b < 4; ++b) {
      child.rows_[context][b] = (1.0 - mix) * rows_[context][b] + mix * fresh[b];
      total += child.rows_[context][b];
    }
    for (int b = 0; b < 4; ++b) child.rows_[context][b] /= total;
  }
  return child;
}

Genome MarkovGenomeModel::sample(std::string name, std::size_t length,
                                 std::uint64_t seed) const {
  Xoshiro256 rng(seed);
  Genome genome;
  genome.name = std::move(name);
  genome.seq.reserve(length);
  std::size_t context = rng.bounded(kContexts);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.uniform();
    double acc = 0.0;
    int base = 3;
    for (int b = 0; b < 4; ++b) {
      acc += rows_[context][b];
      if (u < acc) {
        base = b;
        break;
      }
    }
    genome.seq.push_back(bio::decode_base(base));
    context = ((context << 2) | static_cast<std::size_t>(base)) & (kContexts - 1);
  }
  return genome;
}

double branch_to_composition_mix(double branch) noexcept {
  return std::min(0.95, branch * 8.0);
}

std::vector<Genome> related_genomes(const std::string& base_name, std::size_t count,
                                    std::size_t length, double ancestor_gc,
                                    TaxonRank rank, std::uint64_t seed) {
  const Genome ancestor =
      random_genome(base_name + "_ancestor", length, ancestor_gc, seed);
  const double per_branch = taxon_divergence(rank) / 2.0;
  std::vector<Genome> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(mutate_genome(ancestor, base_name + "_" + std::to_string(i),
                                per_branch, per_branch / 20.0,
                                common::mix64(seed ^ (0x9e37ULL + i))));
  }
  return out;
}

}  // namespace mrmc::simdata

#include "pig/pig.hpp"

#include <algorithm>
#include <sstream>

#include "bio/fasta.hpp"
#include "common/error.hpp"
#include "mr/bytes.hpp"
#include "mr/recovery.hpp"
#include "obs/log.hpp"
#include "obs/pipeline.hpp"
#include "obs/trace.hpp"

namespace mrmc::pig {

namespace {

/// Room for FLATTEN fan-out per input tuple in the composite ordering key.
constexpr long kFlattenStride = 1L << 20;

struct IndexedTuple {
  long index = 0;
  Tuple tuple;
};

}  // namespace

std::string to_text(const Tuple& tuple) {
  std::ostringstream out;
  for (std::size_t f = 0; f < tuple.fields.size(); ++f) {
    if (f > 0) out << '\t';
    const Value& value = tuple.fields[f];
    if (const auto* s = std::get_if<std::string>(&value)) {
      out << *s;
    } else if (const auto* l = std::get_if<long>(&value)) {
      out << *l;
    } else if (const auto* d = std::get_if<double>(&value)) {
      out << *d;
    } else if (const auto* ll = std::get_if<std::vector<long>>(&value)) {
      for (std::size_t i = 0; i < ll->size(); ++i) {
        if (i > 0) out << ',';
        out << (*ll)[i];
      }
    } else if (const auto* dl = std::get_if<std::vector<double>>(&value)) {
      for (std::size_t i = 0; i < dl->size(); ++i) {
        if (i > 0) out << ',';
        out << (*dl)[i];
      }
    } else if (const auto* bag = std::get_if<Bag>(&value)) {
      out << "{bag:" << bag->size() << "}";
    }
  }
  return out.str();
}

PigContext::PigContext(mr::SimDfs* dfs, mr::ClusterConfig cluster,
                       std::size_t threads)
    : dfs_(dfs), cluster_(cluster), threads_(threads) {
  MRMC_REQUIRE(dfs != nullptr, "PigContext needs a DFS");
}

mr::JobConfig PigContext::make_config(const std::string& name,
                                      std::size_t reducers) const {
  mr::JobConfig config;
  config.name = name;
  config.num_reducers = reducers;
  config.records_per_split = 512;
  config.threads = threads_;
  config.cluster = cluster_;
  return config;
}

Relation PigContext::load_fasta(const std::string& path) {
  obs::Tracer::Span span(obs::Tracer::global(), "pig LOAD", {{"path", path}});
  const auto records = bio::read_fasta_string(dfs_->read(path));
  Relation relation;
  relation.reserve(records.size());
  for (const auto& record : records) {
    Tuple tuple;
    tuple.fields.emplace_back(record.seq);
    tuple.fields.emplace_back(record.id);
    relation.push_back(std::move(tuple));
  }
  return relation;
}

Relation PigContext::foreach_generate(const Relation& input, const Udf& udf) {
  obs::Tracer::Span span(obs::Tracer::global(),
                         std::string("pig FOREACH..GENERATE ") + udf.name(),
                         {{"tuples", std::to_string(input.size())}});
  obs::pipeline::StageScope stage(std::string("foreach-") + udf.name());
  using ForeachJob = mr::Job<IndexedTuple, long, Tuple, std::pair<long, Tuple>>;

  const Udf* udf_ptr = &udf;
  ForeachJob job(
      make_config(std::string("foreach-") + udf.name(),
                  std::max<std::size_t>(1, cluster_.reduce_slots())),
      [udf_ptr](const IndexedTuple& record, mr::Emitter<long, Tuple>& emit) {
        Bag outputs = udf_ptr->exec(record.tuple);
        MRMC_CHECK(outputs.size() < static_cast<std::size_t>(kFlattenStride),
                   "FLATTEN fan-out exceeds ordering key stride");
        long sub = 0;
        for (Tuple& out : outputs) {
          emit.emit(record.index * kFlattenStride + sub++, std::move(out));
        }
      },
      [](const long& key, std::vector<Tuple>& values,
         std::vector<std::pair<long, Tuple>>& out) {
        MRMC_CHECK(values.size() == 1, "ordering keys are unique");
        out.emplace_back(key, std::move(values.front()));
      });

  std::vector<IndexedTuple> indexed;
  indexed.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    indexed.push_back({static_cast<long>(i), input[i]});
  }
  auto result = job.run(indexed);
  sim_time_s_ += result.stats.timeline.total_s;
  jobs_.push_back(std::move(result.stats));

  std::sort(result.output.begin(), result.output.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Relation relation;
  relation.reserve(result.output.size());
  for (auto& [key, tuple] : result.output) relation.push_back(std::move(tuple));
  return relation;
}

Relation PigContext::group_all(const Relation& input) {
  obs::Tracer::Span span(obs::Tracer::global(), "pig GROUP ALL",
                         {{"tuples", std::to_string(input.size())}});
  obs::pipeline::StageScope stage("group-all");
  using GroupJob =
      mr::Job<IndexedTuple, int, std::pair<long, Tuple>, Tuple>;

  GroupJob job(
      make_config("group-all", 1),
      [](const IndexedTuple& record, mr::Emitter<int, std::pair<long, Tuple>>& emit) {
        emit.emit(0, {record.index, record.tuple});
      },
      [](const int&, std::vector<std::pair<long, Tuple>>& values,
         std::vector<Tuple>& out) {
        std::sort(values.begin(), values.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        Bag bag;
        bag.reserve(values.size());
        for (auto& [index, tuple] : values) bag.push_back(std::move(tuple));
        Tuple group;
        group.fields.emplace_back(std::move(bag));
        out.push_back(std::move(group));
      });

  std::vector<IndexedTuple> indexed;
  indexed.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    indexed.push_back({static_cast<long>(i), input[i]});
  }
  auto result = job.run(indexed);
  sim_time_s_ += result.stats.timeline.total_s;
  jobs_.push_back(std::move(result.stats));
  return std::move(result.output);
}

namespace {

/// Grouping key for GROUP BY: string and long fields grouped by value,
/// doubles by exact value; other field types are rejected.
std::string group_key(const Tuple& tuple, std::size_t field) {
  MRMC_REQUIRE(field < tuple.fields.size(), "group field out of range");
  const Value& value = tuple.fields[field];
  if (const auto* s = std::get_if<std::string>(&value)) return "s:" + *s;
  if (const auto* l = std::get_if<long>(&value)) {
    return "l:" + std::to_string(*l);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return "d:" + std::to_string(*d);
  }
  throw common::InvalidArgument("GROUP BY supports atom fields only");
}

}  // namespace

Relation PigContext::group_by(const Relation& input, std::size_t field) {
  obs::Tracer::Span span(obs::Tracer::global(), "pig GROUP BY",
                         {{"tuples", std::to_string(input.size())},
                          {"field", std::to_string(field)}});
  obs::pipeline::StageScope stage("group-by");
  using GroupByJob =
      mr::Job<IndexedTuple, std::string, std::pair<long, Tuple>, Tuple>;

  GroupByJob job(
      make_config("group-by", std::max<std::size_t>(1, cluster_.reduce_slots())),
      [field](const IndexedTuple& record,
              mr::Emitter<std::string, std::pair<long, Tuple>>& emit) {
        emit.emit(group_key(record.tuple, field), {record.index, record.tuple});
      },
      [field](const std::string&, std::vector<std::pair<long, Tuple>>& values,
              std::vector<Tuple>& out) {
        std::sort(values.begin(), values.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        Tuple group;
        group.fields.push_back(values.front().second.fields.at(field));
        Bag bag;
        bag.reserve(values.size());
        for (auto& [index, tuple] : values) bag.push_back(std::move(tuple));
        group.fields.emplace_back(std::move(bag));
        out.push_back(std::move(group));
      });

  std::vector<IndexedTuple> indexed;
  indexed.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    indexed.push_back({static_cast<long>(i), input[i]});
  }
  auto result = job.run(indexed);
  sim_time_s_ += result.stats.timeline.total_s;
  jobs_.push_back(std::move(result.stats));

  // Reducer partitions emit in partition order; normalize by key for
  // deterministic output.
  std::sort(result.output.begin(), result.output.end(),
            [field](const Tuple& a, const Tuple& b) {
              return group_key(a, 0) < group_key(b, 0);
            });
  return std::move(result.output);
}

void PigContext::store(const Relation& relation, const std::string& path) {
  obs::Tracer::Span span(obs::Tracer::global(), "pig STORE", {{"path", path}});
  std::ostringstream out;
  for (const Tuple& tuple : relation) out << to_text(tuple) << '\n';
  dfs_->write(path, out.str());
}

namespace {

// -------------------------------------------- checkpoint (de)serialization
// Relations as mr::recovery checkpoint payloads.  Values round-trip through
// their variant index, recursively for bags, so a decoded relation is
// field-for-field identical to the encoded one (doubles as raw IEEE bits).

void encode_value(mr::recovery::PayloadWriter& writer, const Value& value);
Value decode_value(mr::recovery::PayloadReader& reader);

void encode_tuple(mr::recovery::PayloadWriter& writer, const Tuple& tuple) {
  writer.u64(tuple.fields.size());
  for (const Value& value : tuple.fields) encode_value(writer, value);
}

Tuple decode_tuple(mr::recovery::PayloadReader& reader) {
  Tuple tuple;
  tuple.fields.resize(reader.u64());
  for (Value& value : tuple.fields) value = decode_value(reader);
  return tuple;
}

void encode_value(mr::recovery::PayloadWriter& writer, const Value& value) {
  writer.u32(static_cast<std::uint32_t>(value.index()));
  std::visit(
      [&writer](const auto& field) {
        using T = std::decay_t<decltype(field)>;
        if constexpr (std::is_same_v<T, std::string>) {
          writer.str(field);
        } else if constexpr (std::is_same_v<T, long>) {
          writer.i64(field);
        } else if constexpr (std::is_same_v<T, double>) {
          writer.f64(field);
        } else if constexpr (std::is_same_v<T, std::vector<long>>) {
          writer.u64(field.size());
          for (const long element : field) writer.i64(element);
        } else if constexpr (std::is_same_v<T, std::vector<double>>) {
          writer.u64(field.size());
          for (const double element : field) writer.f64(element);
        } else {  // Bag
          writer.u64(field.size());
          for (const Tuple& element : field) encode_tuple(writer, element);
        }
      },
      value);
}

Value decode_value(mr::recovery::PayloadReader& reader) {
  switch (reader.u32()) {
    case 0: return Value(reader.str());
    case 1: return Value(static_cast<long>(reader.i64()));
    case 2: return Value(reader.f64());
    case 3: {
      std::vector<long> list(reader.u64());
      for (long& element : list) element = static_cast<long>(reader.i64());
      return Value(std::move(list));
    }
    case 4: {
      std::vector<double> list(reader.u64());
      for (double& element : list) element = reader.f64();
      return Value(std::move(list));
    }
    case 5: {
      Bag bag(reader.u64());
      for (Tuple& element : bag) element = decode_tuple(reader);
      return Value(std::move(bag));
    }
    default:
      throw common::Error("pig checkpoint: unknown value tag");
  }
}

void encode_relation(mr::recovery::PayloadWriter& writer,
                     const Relation& relation) {
  writer.u64(relation.size());
  for (const Tuple& tuple : relation) encode_tuple(writer, tuple);
}

Relation decode_relation(mr::recovery::PayloadReader& reader) {
  Relation relation(reader.u64());
  for (Tuple& tuple : relation) tuple = decode_tuple(reader);
  return relation;
}

std::uint64_t algorithm3_params_fingerprint(const Algorithm3Params& params) {
  mr::StableHasher hasher;
  mr::stable_hash_append(hasher, params.kmer);
  mr::stable_hash_append(hasher, params.num_hashes);
  mr::stable_hash_append(hasher, params.seed);
  mr::stable_hash_append(hasher, params.cutoff);
  mr::stable_hash_append(hasher, static_cast<int>(params.linkage));
  mr::stable_hash_append(hasher, static_cast<int>(params.estimator));
  mr::stable_hash_append(hasher, static_cast<int>(params.greedy_estimator));
  return hasher.finish();
}

std::uint64_t relation_fingerprint(const Relation& relation) {
  mr::StableHasher hasher;
  mr::stable_hash_append(hasher, static_cast<std::uint64_t>(relation.size()));
  for (const Tuple& tuple : relation) {
    mr::stable_hash_append(hasher, to_text(tuple));
  }
  return hasher.finish();
}

}  // namespace

Algorithm3Result run_algorithm3(mr::SimDfs& dfs, const std::string& input_path,
                                const std::string& out_hier,
                                const std::string& out_greedy,
                                const Algorithm3Params& params,
                                const mr::ClusterConfig& cluster,
                                std::size_t threads) {
  obs::Tracer::Span script_span(obs::Tracer::global(), "pig script algorithm3",
                                {{"input", input_path}});
  obs::pipeline::PipelineScope lineage("algorithm3");
  PigContext ctx(&dfs, cluster, threads);

  // Step 1: A = LOAD '$INPUT' USING FastaStorage ...  Never checkpointed:
  // LOAD is a local parse (no MR job) and its bytes feed the input
  // fingerprint, so a changed input invalidates every downstream stage.
  const Relation a = ctx.load_fasta(input_path);

  // Recovery driver, configured purely from the environment so the signature
  // stays stable: MRMC_CHECKPOINT_DIR arms checkpointing, and the chaos
  // hooks (MRMC_CRASH_AFTER_STAGE / MRMC_FAIL_STAGE) work here exactly as in
  // core::run_pipeline.  Stage names mirror the lineage stage each operator
  // claims, so a checkpoint hit re-claims the identical (stage, sequence)
  // slot an uninterrupted run would; with sequence numbers in both the key
  // chain and the file name, the twice-run "group-all" cannot collide.
  mr::recovery::StageDriver::Options driver_options;
  driver_options.label = "algorithm3";
  driver_options =
      mr::recovery::StageDriver::Options::from_env(driver_options);
  if (!driver_options.checkpoint_dir.empty()) {
    driver_options.params_fingerprint = algorithm3_params_fingerprint(params);
    driver_options.input_fingerprint = relation_fingerprint(a);
  }
  mr::recovery::StageDriver driver(driver_options);
  const auto stage = [&driver](const char* name, auto compute) {
    return driver.run_stage(name, std::move(compute), encode_relation,
                            decode_relation);
  };

  // Step 2: B = FOREACH A GENERATE FLATTEN(StringGenerator(seq, readid))
  const Relation b = stage("foreach-StringGenerator", [&] {
    return ctx.foreach_generate(a, StringGenerator{});
  });
  // Step 3: C = FOREACH B GENERATE FLATTEN(TranslateToKmer(seq, id, $KMER))
  const Relation c = stage("foreach-TranslateToKmer", [&] {
    return ctx.foreach_generate(b, TranslateToKmer{params.kmer});
  });
  // Step 4: E = FOREACH C GENERATE FLATTEN(CalculateMinwiseHash(...))
  const Relation e = stage("foreach-CalculateMinwiseHash", [&] {
    return ctx.foreach_generate(
        c, CalculateMinwiseHash{params.num_hashes, params.kmer, params.seed});
  });
  // Step 6: I = GROUP E ALL
  const Relation grouped =
      stage("group-all", [&] { return ctx.group_all(e); });
  // Step 7: J = FOREACH I GENERATE FLATTEN(CalculatePairwiseSimilarity(...))
  const Relation j = stage("foreach-CalculatePairwiseSimilarity", [&] {
    return ctx.foreach_generate(grouped,
                                CalculatePairwiseSimilarity{params.estimator});
  });
  // Step 8: K = FOREACH (GROUP J ALL) GENERATE
  //             FLATTEN(AgglomerativeHierarchicalClustering(...))
  // Two driver stages (the script runs two jobs) so a resumed run claims
  // the same number of lineage slots as an uninterrupted one.
  const Relation grouped_j =
      stage("group-all", [&] { return ctx.group_all(j); });
  const Relation k =
      stage("foreach-AgglomerativeHierarchicalClustering", [&] {
        return ctx.foreach_generate(
            grouped_j, AgglomerativeHierarchicalClustering{params.linkage,
                                                           params.cutoff});
      });
  // Step 9: L = FOREACH I GENERATE FLATTEN(GreedyClustering(...))
  const Relation l = stage("foreach-GreedyClustering", [&] {
    return ctx.foreach_generate(
        grouped, GreedyClustering{params.cutoff, params.greedy_estimator});
  });
  // Steps 10-11: STORE K INTO '$OUTPUT1'; STORE L INTO '$OUTPUT2'.  Stores
  // always run — re-materializing output from checkpoints is the point of a
  // resume.
  ctx.store(k, out_hier);
  ctx.store(l, out_greedy);

  Algorithm3Result result;
  result.sim_time_s = ctx.sim_time_s();
  result.jobs_run = ctx.job_history().size();
  result.recovery = driver.stats();
  for (const Tuple& tuple : k) {
    result.hierarchical.emplace_back(tuple.get<std::string>(0),
                                     static_cast<int>(tuple.get<long>(1)));
  }
  for (const Tuple& tuple : l) {
    result.greedy.emplace_back(tuple.get<std::string>(0),
                               static_cast<int>(tuple.get<long>(1)));
  }

  static const obs::Logger logger("pig");
  logger.info("algorithm3 finished", {{"jobs", result.jobs_run},
                                      {"sim_time_s", result.sim_time_s},
                                      {"hier_tuples", result.hierarchical.size()},
                                      {"greedy_tuples", result.greedy.size()}});
  obs::Tracer::global().flush();
  return result;
}

}  // namespace mrmc::pig

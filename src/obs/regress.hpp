// Cross-run regression doctor: compare two runs' telemetry artifacts.
//
// Everything the repo emits about a run — Chrome traces (MRMC_TRACE),
// job-doctor report JSON (MRMC_REPORT), BENCH_<name>.json benchmark
// records, and metrics snapshots (MRMC_METRICS) — flattens into one
// normalized shape: MetricRow{source, key, metrics}.  load_rows() sniffs
// the artifact kind from the parsed JSON root, so `mrmc_doctor compare
// baseline.json candidate.json` works on any pairing of like artifacts,
// and `mrmc_doctor regress --baseline-dir bench/baselines` gates CI on a
// committed set of them.
//
// compare() matches rows on (source, key) and judges each shared metric by
// a name-derived direction: `_s` / `_bytes` / `ns_per_*` metrics regress
// when they grow, `speedup` / `efficiency` / `gb_per_s` metrics regress
// when they shrink, anything unrecognized is reported informationally.
// Wall-clock-derived metrics (machine-load noise) get their own, looser
// threshold — set noisy_ratio to 0 to exclude them from the gate entirely.
// Simulated-time metrics (sim_total_s, makespans, shuffle bytes) are
// deterministic, so the default ratio can be tight.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mini_json.hpp"

namespace mrmc::obs::regress {

/// One comparable measured point: `source` names the artifact stream (bench
/// name, "trace", "report", "metrics"), `key` identifies the row within it
/// (e.g. "reads=1000,nodes=4" or a job name), and `metrics` holds every
/// numeric measurement of that point.
struct MetricRow {
  std::string source;
  std::string key;
  std::map<std::string, double> metrics;
};

enum class Direction { kLowerBetter, kHigherBetter, kInformational };

/// Classify a metric name: seconds/bytes/latencies regress upward,
/// speedups/efficiencies/throughputs regress downward, the rest is
/// informational (compared but never gated).
[[nodiscard]] Direction metric_direction(std::string_view name) noexcept;

/// Wall-clock-derived metrics (seconds measured on this machine, per-unit
/// latencies, throughputs, speedups) vary with load; simulated-clock and
/// count metrics do not.
[[nodiscard]] bool metric_is_noisy(std::string_view name) noexcept;

struct Thresholds {
  /// A deterministic metric regresses when it is worse than baseline by
  /// more than this factor (candidate > baseline * ratio for lower-better).
  double ratio = 1.25;
  /// Looser factor for noisy (wall-clock-derived) metrics; 0 demotes them
  /// to informational entries that never gate.
  double noisy_ratio = 2.5;
  /// Values with |x| below this are treated as zero (ratio-free compare).
  double min_value = 1e-12;
  /// Absolute change that is always tolerated, on top of the ratio (useful
  /// for near-zero seconds where any ratio explodes).
  double abs_slack = 0.0;
};

enum class Status {
  kOk,           ///< within threshold
  kImprovement,  ///< better than baseline by more than the threshold
  kRegression,   ///< worse than baseline by more than the threshold
  kMissing,      ///< row/metric present in baseline, absent in candidate
  kNew,          ///< present in candidate only (informational)
  kInfo,         ///< compared but not gated (unknown direction / demoted)
};

[[nodiscard]] const char* status_name(Status status) noexcept;

struct CompareEntry {
  std::string source;
  std::string key;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 1.0;  ///< candidate / baseline (1 when baseline ~ 0)
  Status status = Status::kOk;
};

struct CompareReport {
  std::vector<CompareEntry> entries;  ///< regressions first
  std::size_t compared = 0;     ///< metrics present on both sides
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t missing = 0;

  [[nodiscard]] bool ok() const noexcept { return regressions == 0; }
};

/// Flatten one parsed artifact into rows.  Sniffs the kind from the root:
/// "traceEvents" (Chrome trace), "jobs" (doctor report JSON), "bench" +
/// "rows" (BenchRecord), "histograms"/"counters" (metrics snapshot).
/// Throws std::runtime_error when the root matches none of them.
[[nodiscard]] std::vector<MetricRow> rows_from_json(
    const common::JsonValue& root, const std::string& source_name);

/// Read + parse + flatten one artifact file.  Throws std::runtime_error on
/// unreadable files, malformed JSON, or an unrecognized artifact.
[[nodiscard]] std::vector<MetricRow> load_rows(const std::string& path);

/// Match rows on (source, key), judge every shared metric, and report
/// regressions first.  Baseline-only metrics count as missing; candidate-
/// only rows/metrics are recorded as kNew but never gate.
[[nodiscard]] CompareReport compare(const std::vector<MetricRow>& baseline,
                                    const std::vector<MetricRow>& candidate,
                                    const Thresholds& thresholds = {});

// -------------------------------------------------------------- renderers

/// Text: regressions/improvements/missing in full, plus a summary line.
[[nodiscard]] std::string to_text(const CompareReport& report,
                                  bool color = false);
/// JSON with %.17g doubles: {"summary": {...}, "entries": [...]}.
[[nodiscard]] std::string to_json(const CompareReport& report);
/// Self-contained HTML table, regressions highlighted.
[[nodiscard]] std::string to_html(const CompareReport& report);

}  // namespace mrmc::obs::regress

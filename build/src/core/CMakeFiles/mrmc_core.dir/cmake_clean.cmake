file(REMOVE_RECURSE
  "CMakeFiles/mrmc_core.dir/greedy.cpp.o"
  "CMakeFiles/mrmc_core.dir/greedy.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/hierarchical.cpp.o"
  "CMakeFiles/mrmc_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/incremental.cpp.o"
  "CMakeFiles/mrmc_core.dir/incremental.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/lsh_index.cpp.o"
  "CMakeFiles/mrmc_core.dir/lsh_index.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/minhash.cpp.o"
  "CMakeFiles/mrmc_core.dir/minhash.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/otu_table.cpp.o"
  "CMakeFiles/mrmc_core.dir/otu_table.cpp.o.d"
  "CMakeFiles/mrmc_core.dir/pipeline.cpp.o"
  "CMakeFiles/mrmc_core.dir/pipeline.cpp.o.d"
  "libmrmc_core.a"
  "libmrmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
